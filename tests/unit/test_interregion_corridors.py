"""Corridor selection: region paths, pressure avoidance, link choice."""

import pytest

from repro.interregion.budgets import CorridorBudgets
from repro.interregion.corridors import CorridorSelector
from repro.platform.regions import RegionPartition
from repro.platform.state import PlatformState
from repro.workloads.synthetic import generate_region_mesh


@pytest.fixture()
def setup():
    platform = generate_region_mesh(2, 4)
    partition = RegionPartition.grid(platform, 2, 2)
    budgets = CorridorBudgets(partition, fraction=0.5)
    return platform, partition, budgets, CorridorSelector(partition, budgets)


class TestRegionPath:
    def test_adjacent_pair_is_direct(self, setup):
        _, _, _, selector = setup
        assert selector.region_path("r0_0", "r0_1") == ("r0_0", "r0_1")

    def test_diagonal_pair_takes_two_hops(self, setup):
        _, _, _, selector = setup
        path = selector.region_path("r0_0", "r1_1")
        assert path is not None and len(path) == 3
        assert path[0] == "r0_0" and path[-1] == "r1_1"

    def test_same_region_is_trivial(self, setup):
        _, _, _, selector = setup
        assert selector.region_path("r0_0", "r0_0") == ("r0_0",)

    def test_saturated_pair_diverts_the_path(self, setup):
        _, _, budgets, selector = setup
        free = selector.region_path("r0_0", "r1_1")
        via = free[1]
        # Saturate the first hop of the preferred path; the route must divert
        # through the other intermediate region.
        budgets.reserve("hog", "r0_0", via, budgets.capacity_bits_per_s("r0_0", via))
        diverted = selector.region_path("r0_0", "r1_1", 1e6)
        assert diverted is not None and diverted[1] != via

    def test_no_admissible_path_returns_none(self, setup):
        _, _, budgets, selector = setup
        for pair in budgets.pairs():
            if pair[0] == "r0_0":
                budgets.reserve("hog", *pair, budgets.capacity_bits_per_s(*pair))
        assert selector.region_path("r0_0", "r1_1", 1e6) is None

    def test_allowed_regions_confine_the_search(self, setup):
        _, _, _, selector = setup
        free = selector.region_path("r0_0", "r1_1")
        via = free[1]
        other = "r1_0" if via == "r0_1" else "r0_1"
        confined = selector.region_path(
            "r0_0", "r1_1", allowed_regions=frozenset({"r0_0", "r1_1", other})
        )
        assert confined is not None and confined[1] == other


class TestSelect:
    def test_corridor_links_cross_the_right_boundaries(self, setup):
        platform, partition, budgets, selector = setup
        corridor = selector.select(
            (0, 0), (7, 7), "r0_0", "r1_1", 1e6,
        )
        assert corridor is not None
        assert corridor.region_path()[0] == "r0_0"
        assert corridor.region_path()[-1] == "r1_1"
        for hop in corridor.hops:
            assert hop.link_name in budgets.links_between(*hop.pair)
            link = platform.noc.link_by_name(hop.link_name)
            assert partition.region_of_position(link.source).name == hop.source_region
            assert partition.region_of_position(link.target).name == hop.target_region

    def test_selection_is_deterministic(self, setup):
        _, _, _, selector = setup
        first = selector.select((0, 0), (7, 7), "r0_0", "r1_1", 1e6)
        second = selector.select((0, 0), (7, 7), "r0_0", "r1_1", 1e6)
        assert first == second

    def test_loaded_boundary_link_is_avoided(self, setup):
        platform, _, _, selector = setup
        baseline = selector.select((0, 0), (7, 7), "r0_0", "r1_1", 1e6)
        chosen = baseline.hops[0].link_name
        capacity = platform.noc.link_by_name(chosen).capacity_bits_per_s
        loads = {chosen: capacity}  # the preferred link is full
        rerouted = selector.select((0, 0), (7, 7), "r0_0", "r1_1", 1e6, link_loads=loads)
        assert rerouted is not None
        assert all(hop.link_name != chosen for hop in rerouted.hops)

    def test_sequential_hops_line_up(self, setup):
        """Consecutive crossings stay close: no zig-zag across boundaries."""
        from repro.platform.routing import manhattan_distance

        _, _, _, selector = setup
        corridor = selector.select((0, 0), (7, 7), "r0_0", "r1_1", 1e6)
        for previous, following in zip(corridor.hops, corridor.hops[1:]):
            assert (
                manhattan_distance(previous.exit_position, following.entry_position) <= 4
            )

    def test_state_loads_view_is_accepted(self, setup):
        platform, _, _, selector = setup
        state = PlatformState(platform)
        corridor = selector.select(
            (0, 0), (7, 7), "r0_0", "r1_1", 1e6, link_loads=state.link_loads_view()
        )
        assert corridor is not None
