"""Run-time platform state: allocations and residual capacities."""

import pytest

from repro.exceptions import PlatformError
from repro.platform.state import LinkAllocation, PlatformState, ProcessAllocation


@pytest.fixture()
def state(small_platform):
    return PlatformState(small_platform)


class TestTileAllocations:
    def test_initially_everything_free(self, state):
        assert state.used_process_slots("gpp0") == 0
        assert state.free_process_slots("gpp0") == 1
        assert state.used_memory_bytes("gpp0") == 0

    def test_allocate_and_query(self, state):
        state.allocate_process(
            ProcessAllocation("app", "p", "gpp0", memory_bytes=1024)
        )
        assert state.used_process_slots("gpp0") == 1
        assert state.free_process_slots("gpp0") == 0
        assert state.used_memory_bytes("gpp0") == 1024
        assert state.occupied_tiles() == ("gpp0",)

    def test_over_allocation_rejected(self, state):
        state.allocate_process(ProcessAllocation("app", "p", "gpp0"))
        with pytest.raises(PlatformError):
            state.allocate_process(ProcessAllocation("app", "q", "gpp0"))

    def test_memory_over_allocation_rejected(self, state, small_platform):
        budget = small_platform.tile("gpp0").resources.memory_bytes
        with pytest.raises(PlatformError):
            state.allocate_process(
                ProcessAllocation("app", "p", "gpp0", memory_bytes=budget + 1)
            )

    def test_non_processing_tile_cannot_host(self, state):
        assert not state.can_host("io0")

    def test_can_host_respects_memory(self, state, small_platform):
        budget = small_platform.tile("gpp0").resources.memory_bytes
        assert state.can_host("gpp0", memory_bytes=budget)
        assert not state.can_host("gpp0", memory_bytes=budget + 1)

    def test_utilisation(self, state):
        state.allocate_process(ProcessAllocation("app", "p", "gpp0"))
        utilisation = state.tile_utilisation()
        assert utilisation["gpp0"] == 1.0
        assert utilisation["gpp1"] == 0.0


class TestLinkAllocations:
    def test_link_load_accumulates(self, state, small_platform):
        link = small_platform.noc.link((0, 0), (1, 0))
        state.allocate_link(LinkAllocation("app", "c", link.name, 1e8))
        state.allocate_link(LinkAllocation("app", "d", link.name, 2e8))
        assert state.link_load_bits_per_s(link.name) == pytest.approx(3e8)
        assert state.residual_capacity_bits_per_s((0, 0), (1, 0)) == pytest.approx(
            link.capacity_bits_per_s - 3e8
        )

    def test_link_over_allocation_rejected(self, state, small_platform):
        link = small_platform.noc.link((0, 0), (1, 0))
        state.allocate_link(LinkAllocation("app", "c", link.name, link.capacity_bits_per_s))
        with pytest.raises(PlatformError):
            state.allocate_link(LinkAllocation("app", "d", link.name, 1.0))

    def test_unknown_link_rejected(self, state):
        with pytest.raises(PlatformError):
            state.allocate_link(LinkAllocation("app", "c", "L9_9__9_8", 1.0))

    def test_link_loads_dictionary(self, state, small_platform):
        link = small_platform.noc.link((0, 0), (1, 0))
        state.allocate_link(LinkAllocation("app", "c", link.name, 5.0))
        assert state.link_loads() == {link.name: 5.0}


class TestApplicationLifecycle:
    def test_release_application_frees_everything(self, state, small_platform):
        link = small_platform.noc.link((0, 0), (1, 0))
        state.allocate_process(ProcessAllocation("app", "p", "gpp0", memory_bytes=10))
        state.allocate_link(LinkAllocation("app", "c", link.name, 5.0))
        removed = state.release_application("app")
        assert removed == 2
        assert state.used_process_slots("gpp0") == 0
        assert state.link_load_bits_per_s(link.name) == 0.0
        assert state.applications() == ()

    def test_release_only_touches_named_application(self, state):
        state.allocate_process(ProcessAllocation("app1", "p", "gpp0"))
        state.allocate_process(ProcessAllocation("app2", "q", "gpp1"))
        state.release_application("app1")
        assert state.used_process_slots("gpp0") == 0
        assert state.used_process_slots("gpp1") == 1
        assert state.applications() == ("app2",)

    def test_copy_is_independent(self, state):
        state.allocate_process(ProcessAllocation("app", "p", "gpp0"))
        clone = state.copy()
        clone.allocate_process(ProcessAllocation("app", "q", "gpp1"))
        assert state.used_process_slots("gpp1") == 0
        assert clone.used_process_slots("gpp0") == 1


class TestTransactions:
    def test_commit_keeps_allocations(self, state):
        with state.transaction():
            state.allocate_process(ProcessAllocation("app", "p", "gpp0", memory_bytes=16))
        assert state.used_process_slots("gpp0") == 1
        assert state.used_memory_bytes("gpp0") == 16

    def test_rollback_undoes_allocations(self, state, small_platform):
        link = small_platform.noc.link((0, 0), (1, 0))
        with state.transaction() as txn:
            state.allocate_process(ProcessAllocation("app", "p", "gpp0", memory_bytes=16))
            state.allocate_link(LinkAllocation("app", "c", link.name, 1e6))
            txn.rollback()
        assert state.used_process_slots("gpp0") == 0
        assert state.link_load_bits_per_s(link.name) == 0.0
        assert state.occupied_tiles() == ()
        assert state.applications() == ()

    def test_rollback_restores_preexisting_allocations(self, state):
        state.allocate_process(ProcessAllocation("app1", "p", "gpp0", memory_bytes=8))
        with state.transaction() as txn:
            state.allocate_process(ProcessAllocation("app2", "q", "gpp1"))
            state.release_application("app1")
            assert state.used_process_slots("gpp0") == 0
            txn.rollback()
        assert state.used_process_slots("gpp0") == 1
        assert state.used_memory_bytes("gpp0") == 8
        assert state.used_process_slots("gpp1") == 0
        assert state.applications() == ("app1",)

    def test_exception_triggers_rollback(self, state):
        with pytest.raises(RuntimeError):
            with state.transaction():
                state.allocate_process(ProcessAllocation("app", "p", "gpp0"))
                raise RuntimeError("abort")
        assert state.used_process_slots("gpp0") == 0

    def test_rollback_after_commit_rejected(self, state):
        with state.transaction() as txn:
            txn.commit()
            with pytest.raises(PlatformError):
                txn.rollback()

    def test_nested_commit_folds_into_outer(self, state):
        with state.transaction() as outer:
            with state.transaction():
                state.allocate_process(ProcessAllocation("app", "p", "gpp0"))
            outer.rollback()
        assert state.used_process_slots("gpp0") == 0

    def test_inner_commit_then_exception_still_undone_by_outer(self, state):
        with pytest.raises(RuntimeError):
            with state.transaction():
                with state.transaction() as inner:
                    state.allocate_process(ProcessAllocation("app", "p", "gpp0"))
                    inner.commit()
                    raise RuntimeError("after inner commit")
        assert state.used_process_slots("gpp0") == 0

    def test_mutation_after_inner_commit_rolls_back_in_order(self, state):
        with state.transaction() as outer:
            with state.transaction() as inner:
                state.allocate_process(ProcessAllocation("app", "p", "gpp0", memory_bytes=4))
                inner.commit()
                state.allocate_process(ProcessAllocation("app", "q", "gpp1", memory_bytes=8))
            outer.rollback()
        assert state.used_process_slots("gpp0") == 0
        assert state.used_process_slots("gpp1") == 0
        assert state.used_memory_bytes("gpp0") == 0
        assert state.used_memory_bytes("gpp1") == 0

    def test_commit_after_rollback_rejected(self, state):
        with state.transaction() as txn:
            txn.rollback()
            with pytest.raises(PlatformError):
                txn.commit()

    def test_closing_outer_while_inner_open_rejected(self, state):
        with state.transaction() as outer:
            with state.transaction():
                state.allocate_process(ProcessAllocation("app", "p", "gpp0"))
                with pytest.raises(PlatformError):
                    outer.commit()
                with pytest.raises(PlatformError):
                    outer.rollback()
            outer.rollback()
        assert state.used_process_slots("gpp0") == 0

    def test_repeated_mutations_of_one_key_journal_once(self, state, small_platform):
        link = small_platform.noc.link((0, 0), (1, 0))
        with state.transaction() as txn:
            for index in range(5):
                state.allocate_link(LinkAllocation("app", f"c{index}", link.name, 1.0))
            assert len(txn._undo) == 1
            txn.rollback()
        assert state.link_load_bits_per_s(link.name) == 0.0

    def test_in_transaction_flag(self, state):
        assert not state.in_transaction
        with state.transaction():
            assert state.in_transaction
        assert not state.in_transaction
