"""Run-time platform state: allocations and residual capacities."""

import pytest

from repro.exceptions import PlatformError
from repro.platform.state import LinkAllocation, PlatformState, ProcessAllocation


@pytest.fixture()
def state(small_platform):
    return PlatformState(small_platform)


class TestTileAllocations:
    def test_initially_everything_free(self, state):
        assert state.used_process_slots("gpp0") == 0
        assert state.free_process_slots("gpp0") == 1
        assert state.used_memory_bytes("gpp0") == 0

    def test_allocate_and_query(self, state):
        state.allocate_process(
            ProcessAllocation("app", "p", "gpp0", memory_bytes=1024)
        )
        assert state.used_process_slots("gpp0") == 1
        assert state.free_process_slots("gpp0") == 0
        assert state.used_memory_bytes("gpp0") == 1024
        assert state.occupied_tiles() == ("gpp0",)

    def test_over_allocation_rejected(self, state):
        state.allocate_process(ProcessAllocation("app", "p", "gpp0"))
        with pytest.raises(PlatformError):
            state.allocate_process(ProcessAllocation("app", "q", "gpp0"))

    def test_memory_over_allocation_rejected(self, state, small_platform):
        budget = small_platform.tile("gpp0").resources.memory_bytes
        with pytest.raises(PlatformError):
            state.allocate_process(
                ProcessAllocation("app", "p", "gpp0", memory_bytes=budget + 1)
            )

    def test_non_processing_tile_cannot_host(self, state):
        assert not state.can_host("io0")

    def test_can_host_respects_memory(self, state, small_platform):
        budget = small_platform.tile("gpp0").resources.memory_bytes
        assert state.can_host("gpp0", memory_bytes=budget)
        assert not state.can_host("gpp0", memory_bytes=budget + 1)

    def test_utilisation(self, state):
        state.allocate_process(ProcessAllocation("app", "p", "gpp0"))
        utilisation = state.tile_utilisation()
        assert utilisation["gpp0"] == 1.0
        assert utilisation["gpp1"] == 0.0


class TestLinkAllocations:
    def test_link_load_accumulates(self, state, small_platform):
        link = small_platform.noc.link((0, 0), (1, 0))
        state.allocate_link(LinkAllocation("app", "c", link.name, 1e8))
        state.allocate_link(LinkAllocation("app", "d", link.name, 2e8))
        assert state.link_load_bits_per_s(link.name) == pytest.approx(3e8)
        assert state.residual_capacity_bits_per_s((0, 0), (1, 0)) == pytest.approx(
            link.capacity_bits_per_s - 3e8
        )

    def test_link_over_allocation_rejected(self, state, small_platform):
        link = small_platform.noc.link((0, 0), (1, 0))
        state.allocate_link(LinkAllocation("app", "c", link.name, link.capacity_bits_per_s))
        with pytest.raises(PlatformError):
            state.allocate_link(LinkAllocation("app", "d", link.name, 1.0))

    def test_unknown_link_rejected(self, state):
        with pytest.raises(PlatformError):
            state.allocate_link(LinkAllocation("app", "c", "L9_9__9_8", 1.0))

    def test_link_loads_dictionary(self, state, small_platform):
        link = small_platform.noc.link((0, 0), (1, 0))
        state.allocate_link(LinkAllocation("app", "c", link.name, 5.0))
        assert state.link_loads() == {link.name: 5.0}


class TestApplicationLifecycle:
    def test_release_application_frees_everything(self, state, small_platform):
        link = small_platform.noc.link((0, 0), (1, 0))
        state.allocate_process(ProcessAllocation("app", "p", "gpp0", memory_bytes=10))
        state.allocate_link(LinkAllocation("app", "c", link.name, 5.0))
        removed = state.release_application("app")
        assert removed == 2
        assert state.used_process_slots("gpp0") == 0
        assert state.link_load_bits_per_s(link.name) == 0.0
        assert state.applications() == ()

    def test_release_only_touches_named_application(self, state):
        state.allocate_process(ProcessAllocation("app1", "p", "gpp0"))
        state.allocate_process(ProcessAllocation("app2", "q", "gpp1"))
        state.release_application("app1")
        assert state.used_process_slots("gpp0") == 0
        assert state.used_process_slots("gpp1") == 1
        assert state.applications() == ("app2",)

    def test_copy_is_independent(self, state):
        state.allocate_process(ProcessAllocation("app", "p", "gpp0"))
        clone = state.copy()
        clone.allocate_process(ProcessAllocation("app", "q", "gpp1"))
        assert state.used_process_slots("gpp1") == 0
        assert clone.used_process_slots("gpp0") == 1
