"""Exports (dict/JSON/DOT) and the energy breakdown."""

import json

import pytest

from repro.mapping.cost import CostModel, mapping_energy_nj
from repro.reporting.breakdown import energy_breakdown
from repro.reporting.export import (
    csdf_to_dot,
    kpn_to_dot,
    mapping_to_dict,
    mapping_to_dot,
    platform_to_dict,
    result_to_dict,
    save_json,
)
from repro.spatialmapper.mapper import SpatialMapper
from repro.spatialmapper.config import MapperConfig


@pytest.fixture(scope="module")
def mapped(request):
    from repro.workloads import hiperlan2

    als, platform, library = hiperlan2.build_case_study()
    result = SpatialMapper(platform, library, MapperConfig(analysis_iterations=3)).map(als)
    return als, platform, result


class TestDictExports:
    def test_mapping_roundtrips_through_json(self, mapped):
        als, platform, result = mapped
        data = mapping_to_dict(result.mapping)
        text = json.dumps(data)
        restored = json.loads(text)
        assert restored["application"] == als.name
        assert len(restored["assignments"]) == len(result.mapping.assignments)
        assert len(restored["routes"]) == len(result.mapping.routes)
        assert restored["buffer_capacities"] == result.mapping.buffer_capacities

    def test_result_export_contains_feasibility(self, mapped):
        _, _, result = mapped
        data = result_to_dict(result)
        assert data["status"] == "feasible"
        assert data["feasibility"]["satisfied"] is True
        assert data["feasibility"]["achieved_period_ns"] <= data["feasibility"][
            "required_period_ns"
        ]
        json.dumps(data)  # must be serialisable

    def test_platform_export(self, mapped):
        _, platform, _ = mapped
        data = platform_to_dict(platform)
        assert len(data["tiles"]) == len(platform)
        assert len(data["noc"]["routers"]) == len(platform.noc)
        assert len(data["noc"]["links"]) == len(platform.noc.links)
        json.dumps(data)

    def test_save_json(self, mapped, tmp_path):
        _, _, result = mapped
        path = save_json(result_to_dict(result), tmp_path / "result.json")
        assert path.exists()
        assert json.loads(path.read_text())["status"] == "feasible"


class TestDotExports:
    def test_kpn_dot_contains_all_processes(self, mapped):
        als, _, _ = mapped
        dot = kpn_to_dot(als.kpn)
        assert dot.startswith("digraph")
        for process in als.kpn.processes:
            assert f'"{process.name}"' in dot
        assert "style=dashed" in dot  # the control channel

    def test_csdf_dot_contains_router_actors(self, mapped):
        _, _, result = mapped
        dot = csdf_to_dot(result.mapped_csdf)
        assert dot.count("shape=circle") == 7  # one per router hop
        assert dot.endswith("}")

    def test_mapping_dot_labels_tiles_with_processes(self, mapped):
        _, platform, result = mapped
        dot = mapping_to_dot(result.mapping, platform)
        assert "inverse_ofdm" in dot
        assert "(idle)" in dot  # the unused tiles stay idle
        assert "hops" in dot


class TestEnergyBreakdown:
    def test_total_matches_cost_model(self, mapped):
        als, platform, result = mapped
        model = CostModel(tile_activation_energy_nj=5.0)
        breakdown = energy_breakdown(result.mapping, als, platform, model)
        assert breakdown.total_nj == pytest.approx(
            mapping_energy_nj(result.mapping, als, platform, model)
        )

    def test_computation_entries_per_process(self, mapped):
        als, platform, result = mapped
        breakdown = energy_breakdown(result.mapping, als, platform)
        assert set(breakdown.computation_nj) == {
            "prefix_removal", "freq_offset_correction", "inverse_ofdm", "remainder"
        }
        assert breakdown.computation_nj["inverse_ofdm"] == pytest.approx(143.0)
        assert breakdown.total_computation_nj == pytest.approx(341.0)

    def test_communication_entries_per_channel(self, mapped):
        als, platform, result = mapped
        breakdown = energy_breakdown(result.mapping, als, platform)
        assert set(breakdown.communication_nj) == {
            c.name for c in als.kpn.data_channels()
        }
        assert all(energy >= 0 for energy in breakdown.communication_nj.values())

    def test_table_rendering(self, mapped):
        als, platform, result = mapped
        breakdown = energy_breakdown(result.mapping, als, platform)
        table = breakdown.as_table()
        assert "Energy breakdown" in table
        assert "total" in table
