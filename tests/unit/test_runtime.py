"""Run-time resource manager, scenarios and energy accounting."""

import pytest

from repro.exceptions import AdmissionError
from repro.runtime.accounting import EnergyAccount
from repro.runtime.events import StartEvent, StopEvent
from repro.runtime.manager import RuntimeResourceManager
from repro.runtime.scenario import Scenario, run_scenario
from repro.spatialmapper.config import MapperConfig
from repro.workloads import hiperlan2
from repro.workloads.receivers import build_drm_library, build_drm_receiver_als


@pytest.fixture()
def manager(case_study):
    _, platform, library = case_study
    return RuntimeResourceManager(platform, library, MapperConfig(analysis_iterations=3))


class TestManager:
    def test_start_commits_allocations(self, manager, hiperlan_als):
        result = manager.start(hiperlan_als)
        assert result.is_feasible
        assert manager.is_running(hiperlan_als.name)
        assert manager.state.used_process_slots("montium1") == 1
        assert manager.state.link_loads()

    def test_double_start_rejected(self, manager, hiperlan_als):
        manager.start(hiperlan_als)
        with pytest.raises(AdmissionError):
            manager.start(hiperlan_als)

    def test_stop_releases_everything(self, manager, hiperlan_als):
        manager.start(hiperlan_als)
        manager.stop(hiperlan_als.name)
        assert not manager.is_running(hiperlan_als.name)
        assert manager.state.occupied_tiles() == ()
        assert manager.state.link_loads() == {}

    def test_stop_unknown_application_rejected(self, manager):
        with pytest.raises(AdmissionError):
            manager.stop("ghost")

    def test_second_instance_rejected_when_resources_taken(self, manager, hiperlan_als):
        manager.start(hiperlan_als)
        second = hiperlan2.build_receiver_als()
        second.name = "hiperlan2_rx_2"
        with pytest.raises(AdmissionError):
            manager.start(second)
        assert manager.decisions[-1][1] is False

    def test_restart_after_stop_succeeds(self, manager, hiperlan_als):
        manager.start(hiperlan_als)
        manager.stop(hiperlan_als.name)
        result = manager.start(hiperlan_als)
        assert result.is_feasible

    def test_try_start_returns_none_on_rejection(self, manager, hiperlan_als):
        manager.start(hiperlan_als)
        second = hiperlan2.build_receiver_als()
        second.name = "another"
        assert manager.try_start(second) is None

    def test_per_application_library_override(self, case_study):
        _, platform, _ = case_study
        manager = RuntimeResourceManager(platform, config=MapperConfig(analysis_iterations=3))
        drm = build_drm_receiver_als()
        result = manager.start(drm, library=build_drm_library())
        assert result.is_feasible

    def test_total_power_accumulates(self, manager, hiperlan_als):
        assert manager.total_power_mw() == 0.0
        manager.start(hiperlan_als)
        assert manager.total_power_mw() > 0.0

    def test_mapper_reused_across_starts(self, manager, hiperlan_als):
        first = manager._mapper_for(None)
        manager.start(hiperlan_als)
        manager.stop(hiperlan_als.name)
        manager.start(hiperlan_als)
        assert manager._mapper_for(None) is first


class TestBatchAdmission:
    def test_start_many_gives_per_application_decisions(self, manager):
        rx1 = hiperlan2.build_receiver_als()
        rx2 = hiperlan2.build_receiver_als()
        rx2.name = "second_rx"
        outcome = manager.start_many([rx1, rx2])
        assert [d.application for d in outcome.decisions] == [rx1.name, rx2.name]
        assert outcome.decisions[0].admitted
        assert not outcome.decisions[1].admitted
        assert outcome.admission_rate == pytest.approx(0.5)
        assert manager.is_running(rx1.name)
        assert not manager.is_running(rx2.name)

    def test_start_many_accepts_per_application_libraries(self, case_study):
        _, platform, _ = case_study
        manager = RuntimeResourceManager(platform, config=MapperConfig(analysis_iterations=3))
        drm = build_drm_receiver_als()
        outcome = manager.start_many([(drm, build_drm_library())])
        assert outcome.decisions[0].admitted
        assert manager.is_running(drm.name)

    def test_all_or_nothing_rolls_back_on_any_rejection(self, manager):
        rx1 = hiperlan2.build_receiver_als()
        rx2 = hiperlan2.build_receiver_als()
        rx2.name = "second_rx"
        outcome = manager.start_many([rx1, rx2], all_or_nothing=True)
        # Both decisions read as rejected: rx2 never fit, and rx1's tentative
        # admission was rolled back with the batch.
        assert len(outcome.rejected) == 2
        assert "rolled back" in outcome.decisions[0].reason
        assert not manager.is_running(rx1.name)
        assert not manager.is_running(rx2.name)
        assert manager.state.occupied_tiles() == ()
        assert manager.state.link_loads() == {}
        # The platform is untouched, so the same request succeeds afterwards.
        assert manager.start(rx1).is_feasible

    def test_exception_mid_batch_unwinds_running_bookkeeping(self, manager):
        """If the mapper blows up mid-batch, the state transaction rolls back
        and _running must follow — no ghost applications."""
        rx1 = hiperlan2.build_receiver_als()

        class ExplodingRequest:
            name = "exploder"

        with pytest.raises(AttributeError):
            manager.start_many([rx1, ExplodingRequest()], all_or_nothing=True)
        assert not manager.is_running(rx1.name)
        assert manager.state.occupied_tiles() == ()
        assert manager.state.link_loads() == {}

    def test_all_or_nothing_rollback_spares_preexisting_applications(self, manager):
        """A duplicate request rejected as already-running must not evict the
        running application when the batch rolls back."""
        rx1 = hiperlan2.build_receiver_als()
        manager.start(rx1)
        tiles_before = manager.state.occupied_tiles()
        duplicate = hiperlan2.build_receiver_als()  # same name as rx1
        outcome = manager.start_many([duplicate], all_or_nothing=True)
        assert not outcome.decisions[0].admitted
        assert manager.is_running(rx1.name)
        assert manager.state.occupied_tiles() == tiles_before
        manager.stop(rx1.name)
        assert manager.state.occupied_tiles() == ()


class TestScenario:
    def test_scenario_player_runs_events_in_time_order(self, case_study):
        _, platform, library = case_study
        manager = RuntimeResourceManager(platform, library, MapperConfig(analysis_iterations=3))
        rx = hiperlan2.build_receiver_als()
        scenario = Scenario("basic", duration_ns=4_000_000.0)
        scenario.add(StopEvent(time_ns=2_000_000.0, application=rx.name))
        scenario.add(StartEvent(time_ns=0.0, als=rx))
        outcome = run_scenario(manager, scenario)
        assert outcome.admitted == [rx.name]
        assert outcome.rejected == []
        assert outcome.admission_rate == 1.0
        assert outcome.total_energy_nj > 0

    def test_rejections_are_recorded(self, case_study):
        _, platform, library = case_study
        manager = RuntimeResourceManager(platform, library, MapperConfig(analysis_iterations=3))
        rx1 = hiperlan2.build_receiver_als()
        rx2 = hiperlan2.build_receiver_als()
        rx2.name = "second_rx"
        scenario = Scenario("contention", duration_ns=1_000_000.0)
        scenario.add(StartEvent(time_ns=0.0, als=rx1))
        scenario.add(StartEvent(time_ns=100.0, als=rx2))
        outcome = run_scenario(manager, scenario)
        assert outcome.admitted == [rx1.name]
        assert len(outcome.rejected) == 1
        assert outcome.admission_rate == pytest.approx(0.5)

    def test_departure_frees_resources_for_later_arrival(self, case_study):
        _, platform, library = case_study
        manager = RuntimeResourceManager(platform, library, MapperConfig(analysis_iterations=3))
        rx1 = hiperlan2.build_receiver_als()
        rx2 = hiperlan2.build_receiver_als()
        rx2.name = "second_rx"
        scenario = Scenario("handover", duration_ns=3_000_000.0)
        scenario.add(StartEvent(time_ns=0.0, als=rx1))
        scenario.add(StopEvent(time_ns=1_000_000.0, application=rx1.name))
        scenario.add(StartEvent(time_ns=1_500_000.0, als=rx2))
        outcome = run_scenario(manager, scenario)
        assert outcome.admitted == [rx1.name, rx2.name]
        assert outcome.rejected == []

    def test_event_validation(self):
        with pytest.raises(ValueError):
            StartEvent(time_ns=-1.0, als=None)
        with pytest.raises(ValueError):
            StartEvent(time_ns=0.0, als=None)
        with pytest.raises(ValueError):
            StopEvent(time_ns=0.0, application="")

    def test_deadline_before_arrival_rejected(self, hiperlan_als):
        with pytest.raises(ValueError):
            StartEvent(time_ns=1_000.0, als=hiperlan_als, deadline_ns=500.0)

    def test_equal_time_ties_break_by_sequence_number(self, hiperlan_als):
        # Three same-time events created in a known order, added to the
        # scenario in a different order: sorted_events must replay them in
        # creation order via the monotonic sequence number, not insertion
        # or sort-stability accidents.
        first = StartEvent(time_ns=10.0, als=hiperlan_als)
        second = StopEvent(time_ns=10.0, application="a")
        third = StopEvent(time_ns=10.0, application="b")
        assert first.seq < second.seq < third.seq
        scenario = Scenario("ties")
        for event in (third, first, second):
            scenario.add(event)
        assert scenario.sorted_events() == [first, second, third]
        assert [e.order_key for e in scenario.sorted_events()] == sorted(
            e.order_key for e in scenario.events
        )


class TestEnergyAccount:
    def test_integration_over_time(self):
        account = EnergyAccount()
        account.start("app", time_ns=0.0, energy_nj_per_iteration=100.0, period_ns=1000.0)
        account.stop("app", time_ns=10_000.0)
        # 0.1 nJ/ns for 10 000 ns -> 1000 nJ.
        assert account.total_energy_nj == pytest.approx(1000.0)
        assert account.per_application_nj["app"] == pytest.approx(1000.0)

    def test_finish_closes_open_intervals(self):
        account = EnergyAccount()
        account.start("app", 0.0, 50.0, 1000.0)
        account.finish(2000.0)
        assert account.total_energy_nj == pytest.approx(100.0)

    def test_stop_unknown_application_is_noop(self):
        account = EnergyAccount()
        account.stop("ghost", 100.0)
        assert account.total_energy_nj == 0.0

    def test_average_power(self):
        account = EnergyAccount()
        account.start("app", 0.0, 100.0, 1000.0)   # 0.1 nJ/ns = 100 mW
        account.finish(1_000_000.0)
        assert account.average_power_mw(1_000_000.0) == pytest.approx(100.0)

    def test_average_power_of_empty_duration(self):
        assert EnergyAccount().average_power_mw(0.0) == 0.0
