"""Step 1: implementation selection and first-fit packing."""

import pytest

from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.feedback import ExclusionSet, FeedbackKind
from repro.spatialmapper.step1_implementation import eligible_tiles, select_implementations
from repro.platform.state import PlatformState, ProcessAllocation


class TestHiperlanStep1:
    def test_initial_assignment_matches_paper(self, case_study):
        als, platform, library = case_study
        result = select_implementations(als, platform, library)
        assert result.succeeded
        mapping = result.mapping
        assert mapping.tile_of("inverse_ofdm") == "montium1"
        assert mapping.tile_of("remainder") == "montium2"
        assert mapping.tile_of("prefix_removal") == "arm1"
        assert mapping.tile_of("freq_offset_correction") == "arm2"

    def test_assignment_order_follows_desirability(self, case_study):
        als, platform, library = case_study
        result = select_implementations(als, platform, library)
        assert result.order[:2] == ["inverse_ofdm", "remainder"]

    def test_montium_implementations_chosen_for_heavy_kernels(self, case_study):
        als, platform, library = case_study
        mapping = select_implementations(als, platform, library).mapping
        assert mapping.assignment("inverse_ofdm").implementation.tile_type == "MONTIUM"
        assert mapping.assignment("remainder").implementation.tile_type == "MONTIUM"
        assert mapping.assignment("prefix_removal").implementation.tile_type == "ARM"

    def test_pinned_processes_are_included(self, case_study):
        als, platform, library = case_study
        mapping = select_implementations(als, platform, library).mapping
        assert mapping.tile_of("adc") == "adc"
        assert mapping.tile_of("sink") == "sink"
        assert mapping.assignment("adc").implementation is None

    def test_occupied_montium_leaves_remaining_one_to_most_desirable(self, case_study):
        als, platform, library = case_study
        state = PlatformState(platform)
        state.allocate_process(ProcessAllocation("other", "x", "montium1"))
        result = select_implementations(als, platform, library, state=state)
        mapping = result.mapping
        # Only one Montium is left: the most desirable process (inverse OFDM)
        # takes it; every other assigned process falls back to an ARM
        # implementation (three processes then compete for two ARM tiles, so
        # one of them necessarily stays unassigned and raises feedback).
        assert mapping.tile_of("inverse_ofdm") == "montium2"
        for assignment in mapping.assignments:
            if assignment.implementation is None or assignment.process == "inverse_ofdm":
                continue
            assert assignment.implementation.tile_type == "ARM"
        assert not result.succeeded

    def test_fully_occupied_platform_produces_feedback(self, case_study):
        als, platform, library = case_study
        state = PlatformState(platform)
        state.allocate_process(ProcessAllocation("other", "x", "montium1"))
        state.allocate_process(ProcessAllocation("other", "y", "montium2"))
        result = select_implementations(als, platform, library, state=state)
        # With both Montiums taken only the two ARM tiles remain for four
        # processes, so at least two processes cannot be placed.
        assert not result.succeeded
        assert len(result.feedback) >= 2
        for assignment in result.mapping.assignments:
            if assignment.implementation is not None:
                assert assignment.implementation.tile_type == "ARM"

    def test_banned_implementation_is_skipped(self, case_study):
        als, platform, library = case_study
        exclusions = ExclusionSet()
        exclusions.ban_implementation("inverse_ofdm", "MONTIUM")
        result = select_implementations(als, platform, library, exclusions=exclusions)
        assert result.mapping.assignment("inverse_ofdm").implementation.tile_type == "ARM"

    def test_banned_placement_moves_process(self, case_study):
        als, platform, library = case_study
        exclusions = ExclusionSet()
        exclusions.ban_placement("inverse_ofdm", "montium1")
        result = select_implementations(als, platform, library, exclusions=exclusions)
        assert result.mapping.tile_of("inverse_ofdm") == "montium2"

    def test_no_tiles_at_all_produces_feedback(self, case_study):
        als, platform, library = case_study
        state = PlatformState(platform)
        for tile in platform.processing_tiles():
            state.allocate_process(ProcessAllocation("other", f"p_{tile.name}", tile.name))
        result = select_implementations(als, platform, library, state=state)
        assert not result.succeeded
        assert all(f.kind is FeedbackKind.NO_IMPLEMENTATION for f in result.feedback)


class TestEligibleTiles:
    def test_declaration_order(self, case_study):
        als, platform, library = case_study
        from repro.mapping.mapping import Mapping

        implementation = library.implementation_for("prefix_removal", "ARM")
        tiles = eligible_tiles(implementation, platform, None, Mapping("x"))
        assert tiles == ["arm1", "arm2"]

    def test_memory_limits_respected(self, case_study, hiperlan_library):
        als, platform, library = case_study
        from repro.mapping.mapping import Mapping

        state = PlatformState(platform)
        tile_budget = platform.tile("arm1").resources.memory_bytes
        state.allocate_process(
            ProcessAllocation("other", "hog", "arm1", memory_bytes=tile_budget)
        )
        implementation = hiperlan_library.implementation_for("prefix_removal", "ARM")
        tiles = eligible_tiles(implementation, platform, state, Mapping("x"))
        assert tiles == ["arm2"]
