"""Implementations and the implementation library."""

import pytest

from repro.appmodel.implementation import DEFAULT_PORT, Implementation
from repro.appmodel.library import ImplementationLibrary
from repro.csdf.phase import PhaseVector
from repro.exceptions import ModelError


def _impl(process="fft", tile_type="ARM", energy=10.0, phases=3):
    return Implementation(
        process=process,
        tile_type=tile_type,
        wcet_cycles=PhaseVector([1.0] * phases),
        input_rates={DEFAULT_PORT: PhaseVector([4.0] + [0.0] * (phases - 1))},
        output_rates={DEFAULT_PORT: PhaseVector([0.0] * (phases - 1) + [4.0])},
        energy_nj_per_iteration=energy,
        memory_bytes=1024,
    )


class TestImplementation:
    def test_qualified_name(self):
        assert _impl().qualified_name == "fft@ARM"
        assert _impl().name == "fft@ARM"

    def test_phases_and_total_wcet(self):
        implementation = _impl(phases=4)
        assert implementation.phases == 4
        assert implementation.total_wcet_cycles == 4.0

    def test_rate_lookup_uses_default_port(self):
        implementation = _impl()
        assert implementation.consumption_rates("some_channel").total() == 4.0
        assert implementation.production_rates("another_channel").total() == 4.0

    def test_explicit_port_preferred_over_default(self):
        implementation = Implementation(
            process="p",
            tile_type="ARM",
            wcet_cycles=PhaseVector([1.0]),
            input_rates={DEFAULT_PORT: PhaseVector([1.0]), "special": PhaseVector([7.0])},
            output_rates={DEFAULT_PORT: PhaseVector([1.0])},
        )
        assert implementation.consumption_rates("special").total() == 7.0
        assert implementation.consumption_rates("other").total() == 1.0

    def test_missing_port_without_default_raises(self):
        implementation = Implementation(
            process="p",
            tile_type="ARM",
            wcet_cycles=PhaseVector([1.0]),
            input_rates={"only": PhaseVector([1.0])},
            output_rates={DEFAULT_PORT: PhaseVector([1.0])},
        )
        with pytest.raises(ModelError):
            implementation.consumption_rates("other")

    def test_single_phase_rate_expanded_to_actor_phases(self):
        implementation = Implementation(
            process="p",
            tile_type="ARM",
            wcet_cycles=PhaseVector([1.0, 1.0, 1.0]),
            input_rates={DEFAULT_PORT: PhaseVector([2.0])},
            output_rates={DEFAULT_PORT: PhaseVector([2.0])},
        )
        assert len(implementation.consumption_rates("c")) == 3

    def test_rate_phase_mismatch_rejected(self):
        with pytest.raises(ModelError):
            Implementation(
                process="p",
                tile_type="ARM",
                wcet_cycles=PhaseVector([1.0, 1.0]),
                input_rates={DEFAULT_PORT: PhaseVector([1.0, 1.0, 1.0])},
                output_rates={DEFAULT_PORT: PhaseVector([1.0])},
            )

    def test_negative_energy_rejected(self):
        with pytest.raises(ModelError):
            _impl(energy=-1.0)

    def test_as_actor_converts_cycles_to_time(self):
        actor = _impl().as_actor(100e6, tile="arm1")
        assert actor.name == "fft"
        assert actor.tile == "arm1"
        assert actor.execution_times_ns == (10.0, 10.0, 10.0)

    def test_resource_requirement(self):
        requirement = _impl().resource_requirement()
        assert requirement.memory_bytes == 1024
        assert requirement.compute_cycles_per_iteration == 3.0


class TestLibrary:
    def test_add_and_lookup(self):
        library = ImplementationLibrary([_impl(), _impl(tile_type="MONTIUM", energy=5.0)])
        assert len(library) == 2
        assert library.has_implementation("fft", "ARM")
        assert library.implementation_for("fft", "MONTIUM").energy_nj_per_iteration == 5.0
        assert library.tile_types_for("fft") == ("ARM", "MONTIUM")

    def test_duplicate_pair_rejected(self):
        library = ImplementationLibrary([_impl()])
        with pytest.raises(ModelError):
            library.add(_impl())

    def test_unknown_lookup_raises(self):
        library = ImplementationLibrary()
        with pytest.raises(ModelError):
            library.implementation_for("fft", "ARM")

    def test_cheapest_for(self):
        library = ImplementationLibrary([_impl(energy=10.0), _impl(tile_type="M", energy=3.0)])
        assert library.cheapest_for("fft").tile_type == "M"

    def test_cheapest_for_unknown_process_raises(self):
        with pytest.raises(ModelError):
            ImplementationLibrary().cheapest_for("nope")

    def test_restricted_to(self):
        library = ImplementationLibrary([_impl(), _impl(tile_type="M")])
        restricted = library.restricted_to(["ARM"])
        assert len(restricted) == 1
        assert restricted.tile_types_for("fft") == ("ARM",)

    def test_iteration_and_processes(self):
        library = ImplementationLibrary([_impl(), _impl(process="fir")])
        assert set(library.processes()) == {"fft", "fir"}
        assert len(list(library)) == 2
