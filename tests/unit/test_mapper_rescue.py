"""The stochastic rescue lane, plus the mapper feedback/trace bugfixes.

Covers the rescue lane itself (seeding, adoption, rollback, replay
determinism, cacheability), the feedback-recording symmetry of
``_apply_feedback`` (every branch must log to *both* the trace and the
diagnostics — the INADHERENT branch used to record neither), and the
cache-hit fixes (``last_trace`` resets to a marked empty trace; hits are
clones whose stored ``runtime_s`` is never overwritten).
"""

import random
from collections import deque
from dataclasses import replace

import pytest

from repro.exceptions import ConfigurationError
from repro.mapping.result import MappingStatus
from repro.platform.regions import RegionPartition
from repro.platform.state import PlatformState
from repro.runtime.manager import RuntimeResourceManager
from repro.spatialmapper.cache import MapperCache
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.feedback import ExclusionSet, Feedback, FeedbackKind
from repro.spatialmapper.mapper import SpatialMapper
from repro.spatialmapper.rescue import rescue_seed
from repro.spatialmapper.trace import MapperTrace
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_application,
    generate_region_mesh,
)

BASE = MapperConfig(analysis_iterations=3)
RESCUE = replace(BASE, rescue_searchers=6, rescue_attempts=4)


def packing_app(seed, name="app", io_tile="io_r0_0", stages=4):
    """A memory-heavy application for the packing regime (see fixture)."""
    config = SyntheticConfig(
        stages=stages,
        period_ns=60_000.0,
        tokens_range=(16, 64),
        tile_types=("GPP", "DSP"),
        memory_choices=(2048, 4096, 8192, 12288),
    )
    return generate_application(
        seed, config, name=name, source_tile=io_tile, sink_tile=io_tile
    )


def assignments_of(result):
    """Name-level view of a mapping for equality assertions."""
    return sorted(
        (
            a.process,
            a.tile,
            a.implementation.tile_type if a.implementation else None,
        )
        for a in result.mapping.assignments
    )


@pytest.fixture(scope="module")
def rescue_case():
    """A live platform state plus an application the greedy mapper rejects
    but the rescue lane admits.

    Found by replaying a deterministic churny arrival sequence on a
    multi-slot, memory-tight mesh — the packing regime where the first-fit
    front end strands memory and channel buffers overflow
    placement-dependently.  Everything is seeded, so the same (state,
    application) pair is found on every run.
    """
    platform = generate_region_mesh(
        2, 3, max_processes_per_tile=4, tile_memory_bytes=16 * 1024
    )
    partition = RegionPartition.grid(platform, 2, 2)
    manager = RuntimeResourceManager(platform, config=BASE, partition=partition)
    running = deque()
    rng = random.Random(7)
    cells = [(0, 0), (1, 0), (0, 1), (1, 1)]
    for index in range(1, 121):
        while len(running) >= 12:
            manager.stop(running.popleft())
        cell = cells[(index - 1) % 4]
        io_tile = f"io_r{cell[0]}_{cell[1]}"
        app = packing_app(
            900 + index,
            name=f"app{index}",
            io_tile=io_tile,
            stages=rng.choice((3, 4, 5, 6)),
        )
        decision = manager.admit(app.als, library=app.library)
        if decision.admitted:
            running.append(app.als.name)
            continue
        region = next(r for r in partition.regions if io_tile in r.tile_names)
        mapper = SpatialMapper(platform, app.library, RESCUE)
        result = mapper.map(app.als, manager.state, region=region)
        if result.status is MappingStatus.FEASIBLE:
            return platform, manager.state, region, app
    pytest.fail("no rescueable rejection found in 120 arrivals")


class TestRescueSeed:
    def test_replay_deterministic(self):
        app = packing_app(5)
        fingerprint = ("state", 123)
        first = rescue_seed(app.als, app.library, fingerprint, 0)
        assert rescue_seed(app.als, app.library, fingerprint, 0) == first
        assert rescue_seed(app.als, app.library, fingerprint, 1) != first

    def test_rename_stable(self):
        """Identically-shaped applications draw identical seeds regardless
        of their names — the seed sees only the name-free shape fingerprint."""
        alpha = packing_app(5, name="alpha")
        beta = packing_app(5, name="beta")
        fingerprint = ("state", 123)
        for searcher in range(4):
            assert rescue_seed(
                alpha.als, alpha.library, fingerprint, searcher
            ) == rescue_seed(beta.als, beta.library, fingerprint, searcher)

    def test_state_fingerprint_enters_the_seed(self):
        app = packing_app(5)
        assert rescue_seed(app.als, app.library, ("state", 1), 0) != rescue_seed(
            app.als, app.library, ("state", 2), 0
        )


class TestRescueLane:
    def test_greedy_fails_but_rescue_adopts(self, rescue_case):
        platform, state, region, app = rescue_case
        greedy = SpatialMapper(platform, app.library, BASE).map(
            app.als, state, region=region
        )
        assert greedy.status is not MappingStatus.FEASIBLE

        mapper = SpatialMapper(platform, app.library, RESCUE)
        result = mapper.map(app.als, state, region=region)
        assert result.status is MappingStatus.FEASIBLE
        trace = mapper.last_trace
        assert trace.rescue_adopted
        assert trace.rescue_searchers_run >= 1
        assert trace.rescue_candidates >= trace.rescue_feasible >= 1
        assert any(d.startswith("rescue: adopted") for d in result.diagnostics)
        assert any(name == "mapper.rescue" for name, _, _ in trace.step_windows)

    def test_replay_is_bit_identical(self, rescue_case):
        platform, state, region, app = rescue_case
        first = SpatialMapper(platform, app.library, RESCUE)
        second = SpatialMapper(platform, app.library, RESCUE)
        result_a = first.map(app.als, state, region=region)
        result_b = second.map(app.als, state, region=region)
        assert assignments_of(result_a) == assignments_of(result_b)
        assert result_a.energy_nj_per_iteration == result_b.energy_nj_per_iteration
        for counter in (
            "rescue_searchers_run",
            "rescue_candidates",
            "rescue_feasible",
            "rescue_adopted",
            "rescue_budget_exhausted",
        ):
            assert getattr(first.last_trace, counter) == getattr(
                second.last_trace, counter
            )

    def test_scratch_transactions_leave_state_untouched(self, rescue_case):
        platform, state, region, app = rescue_case
        before = state.fingerprint()
        SpatialMapper(platform, app.library, RESCUE).map(app.als, state, region=region)
        assert state.fingerprint() == before

    def test_disabled_by_default_changes_nothing(self, rescue_case):
        """``rescue_searchers=0`` (the default) must be decision-inert: the
        result is the plain refinement-loop result, untouched."""
        platform, state, region, app = rescue_case
        mapper = SpatialMapper(platform, app.library, BASE)
        result = mapper.map(app.als, state, region=region)
        assert result.status is not MappingStatus.FEASIBLE
        assert mapper.last_trace.rescue_searchers_run == 0
        assert not mapper.last_trace.rescue_adopted
        assert not any(d.startswith("rescue:") for d in result.diagnostics)
        assert not any(
            name == "mapper.rescue" for name, _, _ in mapper.last_trace.step_windows
        )

    def test_rescued_result_is_cacheable(self, rescue_case):
        platform, state, region, app = rescue_case
        cache = MapperCache()
        mapper = SpatialMapper(platform, app.library, RESCUE, cache=cache)
        computed = mapper.map(app.als, state, region=region)
        assert computed.status is MappingStatus.FEASIBLE
        hit = mapper.map(app.als, state, region=region)
        assert cache.stats.hits == 1
        assert hit.status is MappingStatus.FEASIBLE
        assert assignments_of(hit) == assignments_of(computed)
        assert mapper.last_trace.cache_hit


class TestCacheHitTraceAndRuntime:
    """Satellites: cache hits reset ``last_trace`` to a marked empty trace,
    are served as clones, and never overwrite the stored ``runtime_s``."""

    @pytest.fixture()
    def cached_mapper(self):
        app = packing_app(1, stages=3)
        platform = generate_region_mesh(2, 2)
        mapper = SpatialMapper(platform, app.library, BASE, cache=MapperCache())
        return mapper, app

    def test_cache_hit_resets_last_trace_to_marked_empty(self, cached_mapper):
        mapper, app = cached_mapper
        mapper.map(app.als)
        computed_trace = mapper.last_trace
        assert not computed_trace.cache_hit
        assert computed_trace.step_windows

        mapper.map(app.als)
        trace = mapper.last_trace
        assert trace.cache_hit
        assert trace is not computed_trace
        assert trace.step_windows == []
        assert trace.refinement_iterations == 0
        assert trace.rescue_searchers_run == 0
        assert mapper.last_lookup is not None and mapper.last_lookup[2]

    def test_hits_are_clones_and_stored_runtime_survives(self, cached_mapper):
        mapper, app = cached_mapper
        computed = mapper.map(app.als)
        key = MapperCache.key(
            app.als.name, None, PlatformState(mapper.platform).fingerprint()
        )
        stored_runtime = mapper.cache._entries[key].result.runtime_s
        assert stored_runtime == computed.runtime_s

        hit = mapper.map(app.als)
        assert hit is not computed
        assert hit.mapping is not computed.mapping
        # The hit's runtime is stamped fresh on the clone...
        hit.runtime_s = 123.0
        hit.diagnostics.append("junk")
        # ...and neither the stamp nor any caller mutation reaches the
        # stored entry or later hits.
        assert mapper.cache._entries[key].result.runtime_s == stored_runtime
        second = mapper.map(app.als)
        assert second.runtime_s != 123.0
        assert "junk" not in second.diagnostics


class TestFeedbackRecordingSymmetry:
    """Every ``_apply_feedback`` branch that adds an exclusion must record
    the same message in the trace's feedback log *and* the diagnostics —
    the INADHERENT branch used to ban silently."""

    @pytest.fixture(scope="class")
    def mapped(self):
        app = packing_app(1, stages=3)
        platform = generate_region_mesh(2, 2)
        mapper = SpatialMapper(platform, app.library, BASE)
        result = mapper.map(app.als)
        assert result.status is MappingStatus.FEASIBLE
        return mapper, result

    def apply_one(self, mapper, result, feedback):
        work = replace(result)
        work.pending_feedback = [feedback]
        trace = MapperTrace()
        diagnostics = []
        added = mapper._apply_feedback(work, ExclusionSet(), trace, diagnostics)
        return added, trace, diagnostics

    def test_every_branch_records_to_trace_and_diagnostics(self, mapped):
        mapper, result = mapped
        assignment = next(
            a for a in result.mapping.assignments if a.implementation is not None
        )
        cases = [
            Feedback(
                kind=FeedbackKind.THROUGHPUT_VIOLATED,
                step=4,
                message="m",
                culprit_process=assignment.process,
                culprit_tile_type=assignment.implementation.tile_type,
            ),
            Feedback(
                kind=FeedbackKind.ROUTING_FAILED,
                step=3,
                message="m",
                culprit_process=assignment.process,
                culprit_tile=assignment.tile,
            ),
            Feedback(
                kind=FeedbackKind.BUFFER_OVERFLOW,
                step=4,
                message="m",
                culprit_tile=assignment.tile,
            ),
            Feedback(
                kind=FeedbackKind.INADHERENT,
                step=3,
                message="m",
                culprit_process=assignment.process,
            ),
        ]
        for feedback in cases:
            added, trace, diagnostics = self.apply_one(mapper, result, feedback)
            assert added, feedback.kind
            assert len(trace.feedback_log) == 1, feedback.kind
            assert diagnostics == trace.feedback_log, feedback.kind
            assert diagnostics[0].startswith("feedback: banning"), feedback.kind

    def test_inadherent_branch_names_the_banned_placement(self, mapped):
        mapper, result = mapped
        assignment = next(
            a for a in result.mapping.assignments if a.implementation is not None
        )
        feedback = Feedback(
            kind=FeedbackKind.INADHERENT,
            step=3,
            message="m",
            culprit_process=assignment.process,
        )
        added, trace, diagnostics = self.apply_one(mapper, result, feedback)
        assert added
        assert "(inadherent)" in diagnostics[0]
        assert repr(assignment.process) in diagnostics[0]
        assert repr(assignment.tile) in diagnostics[0]


class TestRescueConfigValidation:
    def test_negative_searchers_rejected(self):
        with pytest.raises(ConfigurationError):
            MapperConfig(rescue_searchers=-1)

    def test_zero_attempts_rejected(self):
        with pytest.raises(ConfigurationError):
            MapperConfig(rescue_attempts=0)

    def test_zero_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            MapperConfig(rescue_budget=0)

    def test_unlimited_budget_allowed(self):
        assert MapperConfig(rescue_budget=None).rescue_budget is None
