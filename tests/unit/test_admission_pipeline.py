"""The staged admission pipeline, region sharding and the admission queue."""

import threading

import pytest

from repro.appmodel.implementation import DEFAULT_PORT, Implementation
from repro.appmodel.library import ImplementationLibrary
from repro.csdf.phase import PhaseVector
from repro.exceptions import AdmissionError, AdmissionRejected, UnknownApplication
from repro.kpn.als import ApplicationLevelSpec
from repro.kpn.channel import Channel
from repro.kpn.graph import KPNGraph
from repro.kpn.process import Process
from repro.kpn.qos import QoSConstraints
from repro.platform.builder import PlatformBuilder
from repro.platform.regions import RegionPartition
from repro.platform.state import PlatformState
from repro.runtime.manager import RuntimeResourceManager
from repro.runtime.queue import AdmissionQueue, RequestStatus
from repro.spatialmapper.config import MapperConfig
from repro.workloads.synthetic import SyntheticConfig, generate_application

CONFIG = SyntheticConfig(stages=2, period_ns=100_000.0, tile_types=("GPP",))


def build_two_region_platform():
    """A 4x2 mesh with one I/O tile and three GPP tiles per half."""
    builder = (
        PlatformBuilder("two_region")
        .mesh(4, 2, link_capacity_bits_per_s=4e9, router_frequency_mhz=200.0)
        .tile_type("IO", frequency_mhz=200.0, is_processing=False)
        .tile_type("GPP", frequency_mhz=200.0)
        .tile("io_l", "IO", (0, 0))
        .tile("io_r", "IO", (3, 0))
    )
    for index, position in enumerate([(0, 1), (1, 0), (1, 1)]):
        builder.tile(f"gpp_l{index}", "GPP", position, memory_bytes=128 * 1024)
    for index, position in enumerate([(2, 0), (2, 1), (3, 1)]):
        builder.tile(f"gpp_r{index}", "GPP", position, memory_bytes=128 * 1024)
    return builder.build()


def make_app(seed, name, io_tile):
    """A two-stage synthetic application pinned to one region's I/O tile."""
    return generate_application(
        seed, CONFIG, name=name, source_tile=io_tile, sink_tile=io_tile
    )


def make_unpinned_app(name):
    """A two-process application with no pinned tiles (any region may host it)."""
    kpn = KPNGraph(name)
    kpn.add_process(Process("a"))
    kpn.add_process(Process("b"))
    kpn.add_channel(Channel("c0", "a", "b", tokens_per_iteration=4))
    als = ApplicationLevelSpec(kpn=kpn, qos=QoSConstraints(period_ns=100_000.0))
    library = ImplementationLibrary()
    for process in ("a", "b"):
        library.add(
            Implementation(
                process=process,
                tile_type="GPP",
                wcet_cycles=PhaseVector([1.0, 50.0, 1.0]),
                input_rates={DEFAULT_PORT: PhaseVector([4, 0, 0])},
                output_rates={DEFAULT_PORT: PhaseVector([0, 0, 4])},
                energy_nj_per_iteration=10.0,
                memory_bytes=1024,
            )
        )
    return als, library


@pytest.fixture()
def platform():
    return build_two_region_platform()


@pytest.fixture()
def partition(platform):
    return RegionPartition.grid(platform, 2, 1)


@pytest.fixture()
def manager(platform, partition):
    return RuntimeResourceManager(
        platform,
        config=MapperConfig(analysis_iterations=3),
        partition=partition,
    )


class TestRegionShardedAdmission:
    def test_admission_lands_inside_the_pinned_region(self, manager):
        app = make_app(1, "left_app", "io_l")
        result = manager.start(app.als, library=app.library)
        assert result.is_feasible
        left = manager.partition.region("r0_0")
        assert manager.pipeline.regions_of("left_app") == ("r0_0",)
        for tile in manager.state.occupied_tiles():
            assert tile in left
        for link in manager.state.link_loads():
            assert left.covers_link(link)

    def test_independent_regions_admit_independently(self, manager):
        left = make_app(2, "left_app", "io_l")
        right = make_app(3, "right_app", "io_r")
        outcome = manager.start_many(
            [(left.als, left.library), (right.als, right.library)]
        )
        assert [d.admitted for d in outcome.decisions] == [True, True]
        assert manager.pipeline.regions_of("left_app") == ("r0_0",)
        assert manager.pipeline.regions_of("right_app") == ("r1_0",)

    def test_cross_region_pins_fall_back_to_global(self, manager):
        spanning = generate_application(
            4, CONFIG, name="spanning", source_tile="io_l", sink_tile="io_r"
        )
        # No single region contains both pinned tiles.
        candidates = manager.pipeline.candidate_regions(
            spanning.als, spanning.library
        )
        assert candidates == (None,)
        result = manager.start(spanning.als, library=spanning.library)
        assert result.is_feasible
        assert set(manager.pipeline.regions_of("spanning")) == {"r0_0", "r1_0"}

    def test_candidate_regions_prefer_less_filled(self, manager):
        als, library = make_unpinned_app("floater")
        first = manager.pipeline.candidate_regions(als, library)
        left_app = make_app(6, "filler", "io_l")
        manager.start(left_app.als, library=left_app.library)
        second = manager.pipeline.candidate_regions(als, library)
        # Empty platform: both regions qualify, tie broken by name; once the
        # left region fills, the emptier right region is preferred.
        assert [r.name for r in first if r is not None] == ["r0_0", "r1_0"]
        assert [r.name for r in second if r is not None][0] == "r1_0"

    def test_region_exhaustion_rejects_or_overflows_explicitly(self, manager):
        admitted = []
        for index in range(4):
            app = make_app(10 + index, f"left{index}", "io_l")
            decision = manager.admit(app.als, library=app.library)
            admitted.append(decision.admitted)
        # Three GPP slots on the left: the region fits one two-stage app
        # (plus possibly a second using the last slot pair across tiles);
        # eventually admission fails because the pinned region is full and
        # the global fallback cannot place processes elsewhere... unless it
        # can: the fallback may legally spill compute to the right half
        # while I/O stays pinned left.  Either way every decision is
        # explicit and the platform stays consistent.
        assert admitted[0] is True
        state_apps = set(manager.state.applications())
        running = {app.name for app in manager.running_applications}
        assert state_apps == running


class TestTypedExceptionsAndStop:
    def test_start_raises_typed_rejection(self, manager):
        apps = [make_app(20 + i, f"app{i}", "io_l") for i in range(5)]
        with pytest.raises(AdmissionRejected) as excinfo:
            for app in apps:
                manager.start(app.als, library=app.library)
        assert isinstance(excinfo.value, AdmissionError)  # backwards compatible

    def test_stop_unknown_application_is_typed(self, manager):
        with pytest.raises(UnknownApplication):
            manager.stop("ghost")

    def test_stop_releases_inside_a_transaction(self, manager, monkeypatch):
        app = make_app(30, "fragile", "io_l")
        manager.start(app.als, library=app.library)
        snapshot = (
            dict(manager.state._used_slots),
            dict(manager.state._link_load),
        )
        original = PlatformState.release_application

        def exploding_release(self, application):
            original(self, application)
            raise RuntimeError("interrupted teardown")

        monkeypatch.setattr(PlatformState, "release_application", exploding_release)
        with pytest.raises(RuntimeError):
            manager.stop("fragile")
        # The transaction rolled the half-done release back: the application
        # is still fully allocated and still tracked as running.
        assert (
            dict(manager.state._used_slots),
            dict(manager.state._link_load),
        ) == snapshot
        assert manager.is_running("fragile")
        monkeypatch.undo()
        manager.stop("fragile")
        assert manager.state.occupied_tiles() == ()


class TestMapperCacheInPipeline:
    def test_repeated_question_is_served_from_cache(self, manager):
        app = make_app(40, "repeat", "io_l")
        cache = manager.pipeline.cache
        assert cache is not None and len(cache) == 0
        decision = manager.pipeline.map_stage(
            app.als, app.library, manager.partition.region("r0_0")
        )
        assert decision.status.value == "feasible"
        misses = cache.stats.misses
        again = manager.pipeline.map_stage(
            app.als, app.library, manager.partition.region("r0_0")
        )
        assert cache.stats.hits >= 1
        assert cache.stats.misses == misses
        assert [
            (a.process, a.tile) for a in again.mapping.assignments
        ] == [(a.process, a.tile) for a in decision.mapping.assignments]

    def test_commit_invalidates_by_fingerprint_change(self, manager):
        app = make_app(41, "fingerprinted", "io_l")
        region = manager.partition.region("r0_0")
        cache = manager.pipeline.cache
        before = region.fingerprint(manager.state)
        manager.pipeline.map_stage(app.als, app.library, region)
        manager.start(app.als, library=app.library)
        # The admission itself was answered from the warm entry (same state,
        # same objects)...
        assert cache.stats.hits >= 1
        hits_after_commit = cache.stats.hits
        # ...but the commit changed the region fingerprint: the cached entry
        # for the empty region can no longer answer the new state.
        assert region.fingerprint(manager.state) != before
        sibling = make_app(41, "fingerprinted", "io_l")  # same name, new object
        decision = manager.pipeline.map_stage(sibling.als, sibling.library, region)
        assert cache.stats.hits == hits_after_commit  # no stale hit was served
        assert decision is not None

    def test_stop_restores_fingerprint_and_reenables_entries(self, manager):
        app = make_app(42, "churn", "io_l")
        region = manager.partition.region("r0_0")
        cache = manager.pipeline.cache
        empty = region.fingerprint(manager.state)
        manager.start(app.als, library=app.library)
        manager.stop("churn")
        assert region.fingerprint(manager.state) == empty
        hits = cache.stats.hits
        result = manager.start(app.als, library=app.library)
        # The restart is answered from the entry computed for the first
        # admission: same fingerprint, same ALS object.
        assert cache.stats.hits > hits
        assert result.is_feasible


class TestAdmissionQueue:
    def test_submit_poll_cancel_lifecycle(self, manager):
        queue = AdmissionQueue(manager)
        app = make_app(50, "queued", "io_l")
        ticket = queue.submit(app.als, library=app.library)
        assert queue.poll(ticket).status is RequestStatus.PENDING
        assert len(queue) == 1
        assert queue.cancel(ticket)
        assert queue.poll(ticket).status is RequestStatus.CANCELLED
        assert not queue.cancel(ticket)
        assert len(queue) == 0
        with pytest.raises(UnknownApplication):
            queue.poll(999)

    def test_priorities_drain_first(self, manager):
        queue = AdmissionQueue(manager)
        low = make_app(51, "low", "io_l")
        high = make_app(52, "high", "io_l")
        queue.submit(low.als, library=low.library, priority=0)
        queue.submit(high.als, library=high.library, priority=5)
        drained = queue.drain()
        assert [request.application for request in drained] == ["high", "low"]

    def test_deadline_expires_instead_of_admitting_late(self, manager):
        queue = AdmissionQueue(manager)
        app = make_app(53, "deadline", "io_l")
        ticket = queue.submit(app.als, library=app.library, deadline_ns=100.0)
        drained = queue.drain(now_ns=200.0)
        assert queue.poll(ticket).status is RequestStatus.EXPIRED
        assert drained[0].decision is None
        assert not manager.is_running("deadline")

    def test_region_lanes_interleave(self, manager):
        queue = AdmissionQueue(manager, policy="region")
        l0 = make_app(54, "l0", "io_l")
        l1 = make_app(55, "l1", "io_l")
        r0 = make_app(56, "r0", "io_r")
        for app in (l0, l1, r0):
            queue.submit(app.als, library=app.library)
        assert set(queue.pending_by_lane()) == {"r0_0", "r1_0"}
        drained = queue.drain()
        # Round-robin across lanes: l0 (left), r0 (right), l1 (left).
        assert [request.application for request in drained] == ["l0", "r0", "l1"]

    def test_drain_matches_direct_start_many(self, partition):
        """Queued admissions must decide exactly like a direct batch call."""
        apps = [
            make_app(60 + index, f"app{index}", "io_l" if index % 2 else "io_r")
            for index in range(6)
        ]

        direct_platform = build_two_region_platform()
        direct_manager = RuntimeResourceManager(
            direct_platform,
            config=MapperConfig(analysis_iterations=3),
            partition=RegionPartition.grid(direct_platform, 2, 1),
        )
        direct = direct_manager.start_many([(a.als, a.library) for a in apps])

        queued_platform = build_two_region_platform()
        queued_manager = RuntimeResourceManager(
            queued_platform,
            config=MapperConfig(analysis_iterations=3),
            partition=RegionPartition.grid(queued_platform, 2, 1),
        )
        queue = AdmissionQueue(queued_manager)
        tickets = [queue.submit(a.als, library=a.library) for a in apps]
        drained = queue.drain()

        assert [r.ticket for r in drained] == tickets
        direct_decisions = [
            (d.application, d.admitted, d.reason) for d in direct.decisions
        ]
        queued_decisions = [
            (r.decision.application, r.decision.admitted, r.decision.reason)
            for r in drained
        ]
        assert queued_decisions == direct_decisions
        assert queued_manager.decisions == direct_manager.decisions

    def test_region_fallback_disabled_rejects_without_global_mapping(
        self, platform, partition
    ):
        manager = RuntimeResourceManager(
            platform,
            config=MapperConfig(analysis_iterations=3),
            partition=partition,
            region_fallback=False,
        )
        spanning = generate_application(
            80, CONFIG, name="spanning", source_tile="io_l", sink_tile="io_r"
        )
        assert manager.pipeline.candidate_regions(spanning.als, spanning.library) == ()
        decision = manager.admit(spanning.als, library=spanning.library)
        assert not decision.admitted
        assert "fallback disabled" in decision.reason
        assert manager.state.occupied_tiles() == ()

    def test_drain_survives_mid_batch_exception(self, manager, monkeypatch):
        queue = AdmissionQueue(manager)
        good = make_app(81, "good", "io_l")
        exploder = make_app(82, "exploder", "io_l")
        trailing = make_app(83, "trailing", "io_r")
        first = queue.submit(good.als, library=good.library)
        boom = queue.submit(exploder.als, library=exploder.library)
        tail = queue.submit(trailing.als, library=trailing.library)

        original_decide = manager.pipeline.decide

        def exploding_decide(als, library=None, *, trace=None):
            if als.name == "exploder":
                raise RuntimeError("mapper exploded")
            return original_decide(als, library=library, trace=trace)

        monkeypatch.setattr(manager.pipeline, "decide", exploding_decide)
        with pytest.raises(RuntimeError):
            queue.drain()
        # The request decided before the explosion is finalised from the
        # audit trail; the exploding and trailing requests are back in the
        # queue, in order, for a later retry.
        assert queue.poll(first).status is RequestStatus.ADMITTED
        assert manager.is_running("good")
        assert [r.ticket for r in queue.pending] == [boom, tail]
        monkeypatch.undo()
        queue.cancel(boom)
        drained = queue.drain()
        assert [r.application for r in drained] == ["trailing"]
        assert queue.poll(tail).status is RequestStatus.ADMITTED

    def test_process_next_drains_one(self, manager):
        queue = AdmissionQueue(manager)
        a = make_app(70, "one", "io_l")
        b = make_app(71, "two", "io_r")
        queue.submit(a.als, library=a.library)
        queue.submit(b.als, library=b.library)
        first = queue.process_next()
        assert first.application == "one"
        assert len(queue) == 1
        assert queue.process_next().application == "two"
        assert queue.process_next() is None


class TestQueueTwoPhase:
    """The take/finalize primitives the workload engine drains through."""

    def test_take_marks_in_flight_and_finalize_settles(self, manager):
        queue = AdmissionQueue(manager)
        app = make_app(90, "twophase", "io_l")
        ticket = queue.submit(app.als, library=app.library)
        expired, ready = queue.take()
        assert expired == [] and [r.ticket for r in ready] == [ticket]
        request = ready[0]
        assert request.status is RequestStatus.IN_FLIGHT
        assert not request.status.is_final
        assert len(queue) == 0
        decision = manager.admit(app.als, library=app.library)
        queue.finalize(request, decision)
        assert request.status is RequestStatus.ADMITTED
        assert request.attempts == 1

    def test_expired_deadline_wins_over_take(self, manager):
        queue = AdmissionQueue(manager)
        app = make_app(91, "late", "io_l")
        ticket = queue.submit(app.als, library=app.library, deadline_ns=100.0)
        expired, ready = queue.take(now_ns=200.0)
        assert [r.ticket for r in expired] == [ticket]
        assert ready == []
        assert queue.poll(ticket).status is RequestStatus.EXPIRED
        assert not manager.is_running("late")

    def test_cancel_in_flight_rolls_back_late_admission(self, manager):
        # The race the engine must survive: the client cancels after the
        # worker claimed the request; the worker's admission lands anyway and
        # must be rolled back at finalize, leaving no allocations behind.
        queue = AdmissionQueue(manager)
        app = make_app(92, "raced", "io_l")
        ticket = queue.submit(app.als, library=app.library)
        _, ready = queue.take()
        request = ready[0]
        assert queue.cancel(ticket) is False  # too late to withdraw
        assert request.cancel_requested
        decision = manager.admit(app.als, library=app.library)
        assert decision.admitted and manager.is_running("raced")
        queue.finalize(request, decision)
        assert request.status is RequestStatus.CANCELLED
        assert "rolled back" in request.reason
        assert not manager.is_running("raced")
        assert manager.state.occupied_tiles() == ()
        assert manager.state.link_loads() == {}

    def test_cancel_in_flight_of_rejected_request(self, manager):
        queue = AdmissionQueue(manager)
        blocker = make_app(93, "blocker", "io_l")
        manager.start(blocker.als, library=blocker.library)
        tiles_before = manager.state.occupied_tiles()
        app = make_app(94, "raced", "io_l")
        ticket = queue.submit(app.als, library=app.library)
        _, ready = queue.take()
        request = ready[0]
        queue.cancel(ticket)
        decision = manager.admit(app.als, library=app.library)
        queue.finalize(request, decision)
        assert request.status is RequestStatus.CANCELLED
        # The raced rejection rolled nothing back — the blocker still runs.
        assert manager.is_running("blocker")
        assert manager.state.occupied_tiles() == tiles_before

    def test_cancel_race_under_concurrent_draining(self, manager):
        """A worker thread drains while the client cancels mid-decision."""
        queue = AdmissionQueue(manager)
        app = make_app(95, "concurrent", "io_l")
        ticket = queue.submit(app.als, library=app.library)
        taken = threading.Event()
        cancelled = threading.Event()
        settled: list[RequestStatus] = []

        def worker():
            _, ready = queue.take()
            request = ready[0]
            taken.set()
            # The worker only finishes deciding after the cancellation —
            # the exact race the intent flag exists for.
            assert cancelled.wait(timeout=5.0)
            decision = manager.admit(request.als, library=request.library)
            queue.finalize(request, decision)
            settled.append(request.status)

        thread = threading.Thread(target=worker)
        thread.start()
        assert taken.wait(timeout=5.0)
        assert queue.cancel(ticket) is False
        cancelled.set()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert settled == [RequestStatus.CANCELLED]
        assert not manager.is_running("concurrent")
        assert manager.state.occupied_tiles() == ()

    def test_requeue_returns_requests_to_the_head(self, manager):
        queue = AdmissionQueue(manager)
        first = make_app(96, "first", "io_l")
        second = make_app(97, "second", "io_l")
        queue.submit(first.als, library=first.library)
        queue.submit(second.als, library=second.library)
        _, ready = queue.take()
        queue.requeue(ready)
        assert [r.application for r in queue.pending] == ["first", "second"]
        assert all(r.status is RequestStatus.PENDING for r in queue.pending)


class TestParkedRejections:
    """Cache-aware rejection retries: park until the lane fingerprint moves."""

    def fill_left_region(self, manager):
        admitted = []
        for index in range(4):
            app = make_app(110 + index, f"filler{index}", "io_l")
            if manager.admit(app.als, library=app.library).admitted:
                admitted.append(app.als.name)
        assert admitted
        return admitted

    def test_rejection_parks_and_is_skipped_while_state_unchanged(self, manager):
        self.fill_left_region(manager)
        queue = AdmissionQueue(manager, park_rejections=True)
        app = make_app(120, "parked", "io_l")
        ticket = queue.submit(app.als, library=app.library)
        drained = queue.drain()
        # The rejection parked instead of finalising: still pending, with
        # the fingerprint it was rejected under recorded.
        assert drained == []
        request = queue.poll(ticket)
        assert request.status is RequestStatus.PENDING
        assert request.parked_fingerprint is not None
        assert request.attempts == 1
        # Unchanged state: further drains skip it without mapping work.
        for _ in range(3):
            assert queue.drain() == []
        assert queue.poll(ticket).attempts == 1

    def test_parked_request_retries_once_fingerprint_changes(self, manager):
        admitted = self.fill_left_region(manager)
        queue = AdmissionQueue(manager, park_rejections=True)
        app = make_app(121, "parked", "io_l")
        ticket = queue.submit(app.als, library=app.library)
        queue.drain()
        assert queue.poll(ticket).status is RequestStatus.PENDING
        for name in admitted:
            manager.stop(name)
        drained = queue.drain()
        assert [r.ticket for r in drained] == [ticket]
        assert queue.poll(ticket).status is RequestStatus.ADMITTED
        assert manager.is_running("parked")

    def test_parked_request_expires_past_deadline(self, manager):
        self.fill_left_region(manager)
        queue = AdmissionQueue(manager, park_rejections=True)
        app = make_app(122, "parked", "io_l")
        ticket = queue.submit(app.als, library=app.library, deadline_ns=1_000.0)
        queue.drain(now_ns=0.0)
        assert queue.poll(ticket).status is RequestStatus.PENDING
        drained = queue.drain(now_ns=2_000.0)
        assert [r.ticket for r in drained] == [ticket]
        assert queue.poll(ticket).status is RequestStatus.EXPIRED

    def test_flush_pending_finalises_parked_requests(self, manager):
        self.fill_left_region(manager)
        queue = AdmissionQueue(manager, park_rejections=True)
        app = make_app(123, "parked", "io_l")
        ticket = queue.submit(app.als, library=app.library)
        queue.drain()
        flushed = queue.flush_pending(now_ns=5_000.0)
        assert [r.ticket for r in flushed] == [ticket]
        request = queue.poll(ticket)
        assert request.status is RequestStatus.REJECTED
        assert request.reason  # keeps the real rejection reason
        assert len(queue) == 0
