"""Workload definitions: HiperLAN/2 case study, extra receivers, synthetic generator."""

import pytest

from repro.csdf.repetition import is_consistent
from repro.kpn.validation import validate_kpn
from repro.workloads import hiperlan2, receivers, synthetic


class TestHiperlan2KPN:
    def test_process_set_matches_figure1(self):
        kpn = hiperlan2.build_receiver_kpn()
        assert set(kpn.process_names) == {
            "adc", "prefix_removal", "freq_offset_correction", "inverse_ofdm",
            "remainder", "sink", "ctrl",
        }

    def test_channel_token_counts_match_figure1(self):
        kpn = hiperlan2.build_receiver_kpn()
        assert kpn.channel("c_adc_pfx").tokens_per_iteration == 80
        assert kpn.channel("c_pfx_frq").tokens_per_iteration == 64
        assert kpn.channel("c_frq_iofdm").tokens_per_iteration == 64
        assert kpn.channel("c_iofdm_rem").tokens_per_iteration == 52
        assert kpn.channel("c_ctrl_rem").is_control

    def test_output_size_depends_on_mode(self):
        assert hiperlan2.output_tokens_for_mode("BPSK12") == 3
        assert hiperlan2.output_tokens_for_mode("QPSK34") == 9
        assert hiperlan2.output_tokens_for_mode("QAM64_34") == 96
        with pytest.raises(ValueError):
            hiperlan2.output_tokens_for_mode("LTE")

    def test_output_byte_range_matches_paper(self):
        # Paper: minimum 12 bytes (BPSK), maximum 384 bytes (64-QAM) per symbol.
        minimum = hiperlan2.output_tokens_for_mode("BPSK12") * 4
        maximum = hiperlan2.output_tokens_for_mode("QAM64_34") * 4
        assert minimum == 12
        assert maximum == 384

    def test_control_can_be_omitted(self):
        kpn = hiperlan2.build_receiver_kpn(include_control=False)
        assert "ctrl" not in kpn.process_names

    def test_als_has_4us_period(self):
        als = hiperlan2.build_receiver_als()
        assert als.period_ns == pytest.approx(4000.0)
        validate_kpn(als.kpn)


class TestHiperlan2Library:
    def test_every_process_has_arm_and_montium_variant(self, hiperlan_library):
        for process in hiperlan2.PROCESS_NAMES:
            assert set(hiperlan_library.tile_types_for(process)) == {"ARM", "MONTIUM"}

    def test_energies_match_table1(self, hiperlan_library):
        expected = {
            ("prefix_removal", "ARM"): 60, ("prefix_removal", "MONTIUM"): 32,
            ("freq_offset_correction", "ARM"): 62, ("freq_offset_correction", "MONTIUM"): 33,
            ("inverse_ofdm", "ARM"): 275, ("inverse_ofdm", "MONTIUM"): 143,
            ("remainder", "ARM"): 140, ("remainder", "MONTIUM"): 76,
        }
        for (process, tile_type), energy in expected.items():
            implementation = hiperlan_library.implementation_for(process, tile_type)
            assert implementation.energy_nj_per_iteration == energy

    def test_phase_counts_match_table1(self, hiperlan_library):
        assert hiperlan_library.implementation_for("prefix_removal", "ARM").phases == 18
        assert hiperlan_library.implementation_for("prefix_removal", "MONTIUM").phases == 81
        assert hiperlan_library.implementation_for("freq_offset_correction", "ARM").phases == 3
        assert hiperlan_library.implementation_for("inverse_ofdm", "MONTIUM").phases == 117

    def test_montium_inverse_ofdm_wcet(self, hiperlan_library):
        implementation = hiperlan_library.implementation_for("inverse_ofdm", "MONTIUM")
        assert implementation.total_wcet_cycles == 64 + 170 + 52

    def test_prefix_removal_arm_rates_total_80_in_64_out(self, hiperlan_library):
        implementation = hiperlan_library.implementation_for("prefix_removal", "ARM")
        assert implementation.consumption_rates("c_adc_pfx").total() == 80
        assert implementation.production_rates("c_pfx_frq").total() == 64

    def test_mode_changes_remainder_output(self):
        qpsk = hiperlan2.build_implementation_library("QPSK12")
        qam = hiperlan2.build_implementation_library("QAM64_34")
        assert (
            qpsk.implementation_for("remainder", "MONTIUM").production_rates("x").total()
            < qam.implementation_for("remainder", "MONTIUM").production_rates("x").total()
        )

    def test_fast_mode_wcet_stays_positive(self):
        library = hiperlan2.build_implementation_library("QAM64_34")
        implementation = library.implementation_for("remainder", "MONTIUM")
        assert all(c >= 0 for c in implementation.wcet_cycles)

    def test_paper_table1_rows_cover_all_pairs(self):
        rows = hiperlan2.paper_table1()
        assert len(rows) == 8
        assert {row["pe_type"] for row in rows} == {"ARM", "MONTIUM"}


class TestHiperlan2Platform:
    def test_figure2_contents(self, hiperlan_platform):
        assert len(hiperlan_platform) == 9
        assert len(hiperlan_platform.tiles_of_type("ARM")) == 2
        assert len(hiperlan_platform.tiles_of_type("MONTIUM")) == 2
        assert len(hiperlan_platform.tiles_of_type("IO")) == 2
        assert len(hiperlan_platform.tiles_of_type("OTHER")) == 3
        assert len(hiperlan_platform.noc) == 9

    def test_router_latency_is_4_cycles(self, hiperlan_platform):
        for router in hiperlan_platform.noc.routers:
            assert router.latency_cycles == 4

    def test_io_tiles_cannot_host_processes(self, hiperlan_platform):
        assert not hiperlan_platform.tile("adc").is_processing
        assert not hiperlan_platform.tile("sink").is_processing

    def test_positions_follow_module_constants(self, hiperlan_platform):
        for name, position in hiperlan2.TILE_POSITIONS.items():
            assert hiperlan_platform.tile(name).position == position


class TestExtraReceivers:
    def test_drm_receiver_is_well_formed(self):
        als = receivers.build_drm_receiver_als()
        validate_kpn(als.kpn)
        library = receivers.build_drm_library()
        for process in als.kpn.mappable_processes():
            assert library.implementations_for(process.name)

    def test_image_pipeline_is_well_formed(self):
        als = receivers.build_image_pipeline_als()
        validate_kpn(als.kpn)
        library = receivers.build_image_library()
        for process in als.kpn.mappable_processes():
            assert library.implementations_for(process.name)

    def test_merge_libraries(self):
        merged = receivers.merge_libraries(
            receivers.build_drm_library(), receivers.build_image_library()
        )
        assert "decimator" in merged.processes()
        assert "debayer" in merged.processes()


class TestSyntheticGenerator:
    def test_deterministic_per_seed(self):
        first = synthetic.generate_application(seed=42)
        second = synthetic.generate_application(seed=42)
        assert first.als.kpn.process_names == second.als.kpn.process_names
        assert [c.tokens_per_iteration for c in first.als.kpn.channels] == [
            c.tokens_per_iteration for c in second.als.kpn.channels
        ]

    def test_different_seeds_differ(self):
        first = synthetic.generate_application(seed=1)
        second = synthetic.generate_application(seed=2)
        assert [c.tokens_per_iteration for c in first.als.kpn.channels] != [
            c.tokens_per_iteration for c in second.als.kpn.channels
        ]

    def test_chain_structure(self):
        app = synthetic.generate_application(seed=3, config=synthetic.SyntheticConfig(stages=5))
        assert len(app.als.kpn.mappable_processes()) == 5
        validate_kpn(app.als.kpn)

    def test_series_parallel_structure(self):
        config = synthetic.SyntheticConfig(stages=8, parallel_branches=3)
        app = synthetic.generate_application(seed=4, config=config)
        validate_kpn(app.als.kpn)
        fork_out = app.als.kpn.outgoing_channels("k0")
        assert len(fork_out) == 3

    def test_every_kernel_has_gpp_fallback(self):
        app = synthetic.generate_application(seed=5)
        for process in app.als.kpn.mappable_processes():
            assert app.library.has_implementation(process.name, "GPP")

    def test_generated_platform_structure(self):
        platform = synthetic.generate_platform(seed=6, width=4, height=3)
        assert len(platform.noc) == 12
        assert platform.has_tile("io_in") and platform.has_tile("io_out")
        assert len(platform.processing_tiles()) == 10

    def test_platform_deterministic_per_seed(self):
        first = synthetic.generate_platform(seed=7)
        second = synthetic.generate_platform(seed=7)
        assert [t.type_name for t in first.tiles] == [t.type_name for t in second.tiles]

    def test_scenario_generation(self):
        apps = synthetic.generate_scenario(seed=8, application_count=3)
        assert len(apps) == 3
        assert len({app.als.name for app in apps}) == 3

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            synthetic.generate_application(seed=1, config=synthetic.SyntheticConfig(stages=0))
