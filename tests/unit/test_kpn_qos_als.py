"""QoS constraints, ALS bundling and KPN validation."""

import pytest

from repro.exceptions import KPNError
from repro.kpn.als import ApplicationLevelSpec
from repro.kpn.channel import Channel
from repro.kpn.graph import KPNGraph
from repro.kpn.process import Process, ProcessKind
from repro.kpn.qos import QoSConstraints
from repro.kpn.validation import validate_kpn


class TestQoSConstraints:
    def test_period_must_be_positive(self):
        with pytest.raises(ValueError):
            QoSConstraints(period_ns=0)

    def test_latency_must_be_positive_when_given(self):
        with pytest.raises(ValueError):
            QoSConstraints(period_ns=100, max_latency_ns=-1)

    def test_energy_budget_must_be_positive_when_given(self):
        with pytest.raises(ValueError):
            QoSConstraints(period_ns=100, max_energy_nj_per_iteration=0)

    def test_throughput_property(self):
        qos = QoSConstraints(period_ns=4000.0)
        assert qos.throughput_iterations_per_s == pytest.approx(250_000.0)

    def test_satisfied_by_period_only(self):
        qos = QoSConstraints(period_ns=4000.0)
        assert qos.satisfied_by(3999.0)
        assert qos.satisfied_by(4000.0)
        assert not qos.satisfied_by(4001.0)

    def test_satisfied_by_with_latency(self):
        qos = QoSConstraints(period_ns=4000.0, max_latency_ns=10_000.0)
        assert qos.satisfied_by(3000.0, latency_ns=9000.0)
        assert not qos.satisfied_by(3000.0, latency_ns=11_000.0)

    def test_latency_bound_requires_latency_value(self):
        qos = QoSConstraints(period_ns=4000.0, max_latency_ns=10_000.0)
        assert not qos.satisfied_by(3000.0, latency_ns=None)


def _chain_kpn() -> KPNGraph:
    kpn = KPNGraph("chain")
    kpn.add_process(Process("src", ProcessKind.SOURCE, pinned_tile="io"))
    kpn.add_process(Process("k"))
    kpn.add_process(Process("snk", ProcessKind.SINK, pinned_tile="io"))
    kpn.add_channel(Channel("c0", "src", "k"))
    kpn.add_channel(Channel("c1", "k", "snk"))
    return kpn


class TestValidation:
    def test_valid_chain_passes(self):
        validate_kpn(_chain_kpn())

    def test_empty_graph_rejected(self):
        with pytest.raises(KPNError):
            validate_kpn(KPNGraph("empty"))

    def test_disconnected_kernel_rejected(self):
        kpn = _chain_kpn()
        kpn.add_process(Process("orphan"))
        with pytest.raises(KPNError):
            validate_kpn(kpn)

    def test_disconnected_control_process_allowed(self):
        kpn = _chain_kpn()
        kpn.add_process(Process("ctrl", ProcessKind.CONTROL))
        validate_kpn(kpn)

    def test_source_with_incoming_data_rejected(self):
        kpn = KPNGraph("bad")
        kpn.add_process(Process("src", ProcessKind.SOURCE, pinned_tile="io"))
        kpn.add_process(Process("k"))
        kpn.add_channel(Channel("c0", "src", "k"))
        kpn.add_channel(Channel("c1", "k", "src"))
        with pytest.raises(KPNError):
            validate_kpn(kpn)

    def test_sink_with_outgoing_data_rejected(self):
        kpn = KPNGraph("bad")
        kpn.add_process(Process("snk", ProcessKind.SINK, pinned_tile="io"))
        kpn.add_process(Process("k"))
        kpn.add_channel(Channel("c0", "snk", "k"))
        kpn.add_channel(Channel("c1", "k", "snk"))
        with pytest.raises(KPNError):
            validate_kpn(kpn)


class TestALS:
    def test_name_defaults_to_kpn_name(self):
        als = ApplicationLevelSpec(kpn=_chain_kpn(), qos=QoSConstraints(period_ns=1000))
        assert als.name == "chain"

    def test_period_shortcut(self):
        als = ApplicationLevelSpec(kpn=_chain_kpn(), qos=QoSConstraints(period_ns=1234.0))
        assert als.period_ns == 1234.0

    def test_validation_runs_on_construction(self):
        kpn = _chain_kpn()
        kpn.add_process(Process("orphan"))
        with pytest.raises(KPNError):
            ApplicationLevelSpec(kpn=kpn, qos=QoSConstraints(period_ns=1000))

    def test_mappable_process_names(self):
        als = ApplicationLevelSpec(kpn=_chain_kpn(), qos=QoSConstraints(period_ns=1000))
        assert als.mappable_process_names() == ("k",)

    def test_pinned_assignments(self):
        als = ApplicationLevelSpec(kpn=_chain_kpn(), qos=QoSConstraints(period_ns=1000))
        assert als.pinned_assignments() == {"src": "io", "snk": "io"}
