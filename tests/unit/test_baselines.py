"""Baseline mappers."""

import pytest

from repro.baselines.common import better_result, complete_and_evaluate
from repro.baselines.design_time import DesignTimeMapper
from repro.baselines.exhaustive import ExhaustiveMapper
from repro.baselines.first_fit import FirstFitMapper
from repro.baselines.random_mapper import RandomMapper
from repro.baselines.simulated_annealing import SimulatedAnnealingMapper
from repro.exceptions import MappingError
from repro.mapping.mapping import Mapping
from repro.mapping.result import MappingResult, MappingStatus
from repro.platform.state import PlatformState, ProcessAllocation
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.mapper import SpatialMapper
from repro.spatialmapper.step1_implementation import select_implementations


@pytest.fixture(scope="module")
def fast_config():
    return MapperConfig(analysis_iterations=3)


class TestCompleteAndEvaluate:
    def test_step1_mapping_becomes_feasible_result(self, case_study, fast_config):
        als, platform, library = case_study
        placement = select_implementations(als, platform, library, config=fast_config).mapping
        result = complete_and_evaluate(
            placement, als, platform, library, config=fast_config
        )
        assert result.status is MappingStatus.FEASIBLE
        assert result.mapping.routes

    def test_better_result_prefers_status_then_energy(self):
        feasible = MappingResult(Mapping("a"), MappingStatus.FEASIBLE, energy_nj_per_iteration=10)
        adherent = MappingResult(Mapping("a"), MappingStatus.ADHERENT, energy_nj_per_iteration=1)
        cheaper = MappingResult(Mapping("a"), MappingStatus.FEASIBLE, energy_nj_per_iteration=5)
        assert better_result(adherent, feasible) is feasible
        assert better_result(feasible, adherent) is feasible
        assert better_result(feasible, cheaper) is cheaper
        assert better_result(None, adherent) is adherent


class TestExhaustive:
    def test_finds_feasible_mapping(self, case_study, fast_config):
        als, platform, library = case_study
        mapper = ExhaustiveMapper(platform, library, fast_config)
        result = mapper.map(als)
        assert result.status is MappingStatus.FEASIBLE
        assert mapper.evaluated_placements > 0

    def test_optimal_energy_not_worse_than_heuristic(self, case_study, fast_config):
        als, platform, library = case_study
        heuristic = SpatialMapper(platform, library, fast_config).map(als)
        optimal = ExhaustiveMapper(platform, library, fast_config).map(als)
        assert optimal.energy_nj_per_iteration <= heuristic.energy_nj_per_iteration + 1e-9

    def test_combination_cap_enforced(self, case_study, fast_config):
        als, platform, library = case_study
        mapper = ExhaustiveMapper(platform, library, fast_config, max_combinations=2)
        with pytest.raises(MappingError):
            mapper.map(als)

    def test_respects_existing_allocations(self, case_study, fast_config):
        als, platform, library = case_study
        state = PlatformState(platform)
        state.allocate_process(ProcessAllocation("other", "x", "montium1"))
        result = ExhaustiveMapper(platform, library, fast_config).map(als, state)
        used = {a.tile for a in result.mapping.assignments if a.implementation}
        assert "montium1" not in used


class TestRandomAndFirstFit:
    def test_random_mapper_is_deterministic_per_seed(self, case_study, fast_config):
        als, platform, library = case_study
        first = RandomMapper(platform, library, fast_config, trials=5, seed=7).map(als)
        second = RandomMapper(platform, library, fast_config, trials=5, seed=7).map(als)
        assert first.energy_nj_per_iteration == second.energy_nj_per_iteration
        assert {a.process: a.tile for a in first.mapping.assignments} == {
            a.process: a.tile for a in second.mapping.assignments
        }

    def test_random_mapper_produces_adequate_placements(self, case_study, fast_config):
        als, platform, library = case_study
        result = RandomMapper(platform, library, fast_config, trials=5, seed=3).map(als)
        assert result.status.at_least(MappingStatus.ADHERENT)

    def test_random_trials_must_be_positive(self, case_study):
        als, platform, library = case_study
        with pytest.raises(ValueError):
            RandomMapper(platform, library, trials=0)

    def test_first_fit_reproduces_step1_placement(self, case_study, fast_config):
        als, platform, library = case_study
        result = FirstFitMapper(platform, library, fast_config).map(als)
        assert result.mapping.tile_of("inverse_ofdm") == "montium1"
        assert result.mapping.tile_of("prefix_removal") == "arm1"

    def test_first_fit_not_better_than_full_heuristic(self, case_study, fast_config):
        als, platform, library = case_study
        heuristic = SpatialMapper(platform, library, fast_config).map(als)
        first_fit = FirstFitMapper(platform, library, fast_config).map(als)
        assert heuristic.energy_nj_per_iteration <= first_fit.energy_nj_per_iteration + 1e-9
        assert heuristic.manhattan_cost <= first_fit.manhattan_cost


class TestSimulatedAnnealing:
    def test_finds_feasible_mapping(self, case_study, fast_config):
        als, platform, library = case_study
        mapper = SimulatedAnnealingMapper(
            platform, library, fast_config, iterations=200, seed=11
        )
        result = mapper.map(als)
        assert result.status is MappingStatus.FEASIBLE

    def test_deterministic_per_seed(self, case_study, fast_config):
        als, platform, library = case_study

        def run(seed):
            return SimulatedAnnealingMapper(
                platform, library, fast_config, iterations=100, seed=seed
            ).map(als)

        assert run(5).energy_nj_per_iteration == run(5).energy_nj_per_iteration

    def test_invalid_parameters_rejected(self, case_study):
        als, platform, library = case_study
        with pytest.raises(ValueError):
            SimulatedAnnealingMapper(platform, library, iterations=0)
        with pytest.raises(ValueError):
            SimulatedAnnealingMapper(platform, library, cooling=1.5)


class TestDesignTime:
    def test_precomputed_mapping_replayed_on_idle_platform(self, case_study, fast_config):
        als, platform, library = case_study
        mapper = DesignTimeMapper(platform, library, fast_config)
        result = mapper.map(als)
        assert result.status is MappingStatus.FEASIBLE
        assert mapper.has_design_time_mapping(als.name)

    def test_collision_without_fallback_is_rejected(self, case_study, fast_config):
        als, platform, library = case_study
        mapper = DesignTimeMapper(platform, library, fast_config)
        mapper.precompute(als)
        state = PlatformState(platform)
        state.allocate_process(ProcessAllocation("other", "x", "montium2"))
        result = mapper.map(als, state)
        assert result.status is MappingStatus.FAILED

    def test_collision_with_fallback_attempts_gpp_only_mapping(self, case_study, fast_config):
        als, platform, library = case_study
        mapper = DesignTimeMapper(platform, library, fast_config, fallback_tile_type="ARM")
        mapper.precompute(als)
        state = PlatformState(platform)
        state.allocate_process(ProcessAllocation("other", "x", "montium2"))
        result = mapper.map(als, state)
        # The ARM-only fallback cannot sustain the 4 us period (and there are
        # only two ARM tiles for four processes), so the request fails — which
        # is exactly the worst-case behaviour the paper argues against.
        assert result.status is not MappingStatus.FEASIBLE
        assert any("fell back" in line for line in result.diagnostics)

    def test_runtime_mapper_beats_design_time_under_contention(self, case_study, fast_config):
        als, platform, library = case_study
        state = PlatformState(platform)
        state.allocate_process(ProcessAllocation("other", "x", "montium2"))
        run_time = SpatialMapper(platform, library, fast_config).map(als, state)
        design_time = DesignTimeMapper(platform, library, fast_config).map(als, state)
        assert not design_time.is_feasible
        # The run-time mapper at least produces a structurally valid mapping
        # (it cannot be feasible either: only three processing tiles remain).
        assert run_time.status.at_least(design_time.status)
