"""Step-1 desirability ordering."""

import math

import pytest

from repro.appmodel.implementation import DEFAULT_PORT, Implementation
from repro.csdf.phase import PhaseVector
from repro.spatialmapper.desirability import AssignmentOption, assignment_options, desirability


def _impl(process, tile_type, energy):
    return Implementation(
        process=process,
        tile_type=tile_type,
        wcet_cycles=PhaseVector([1.0]),
        input_rates={DEFAULT_PORT: PhaseVector([1.0])},
        output_rates={DEFAULT_PORT: PhaseVector([1.0])},
        energy_nj_per_iteration=energy,
    )


class TestDesirability:
    def test_no_options_is_minus_infinity(self):
        assert desirability([]) == -math.inf

    def test_single_cost_level_is_plus_infinity(self):
        options = [
            AssignmentOption(_impl("p", "ARM", 10.0), "arm1", 10.0),
            AssignmentOption(_impl("p", "ARM", 10.0), "arm2", 10.0),
        ]
        assert desirability(options) == math.inf

    def test_difference_between_two_cheapest_levels(self):
        options = [
            AssignmentOption(_impl("p", "M", 143.0), "m1", 143.0),
            AssignmentOption(_impl("p", "M", 143.0), "m2", 143.0),
            AssignmentOption(_impl("p", "ARM", 275.0), "a1", 275.0),
        ]
        assert desirability(options) == pytest.approx(132.0)

    def test_paper_desirability_ordering(self, hiperlan_library):
        """The Inverse OFDM must be the most desirable process of the example."""
        deltas = {}
        for process in ("prefix_removal", "freq_offset_correction", "inverse_ofdm", "remainder"):
            implementations = hiperlan_library.implementations_for(process)
            options = [
                AssignmentOption(impl, f"tile_{impl.tile_type}", impl.energy_nj_per_iteration)
                for impl in implementations
            ]
            deltas[process] = desirability(options)
        assert deltas["inverse_ofdm"] == pytest.approx(132.0)
        assert deltas["remainder"] == pytest.approx(64.0)
        assert deltas["freq_offset_correction"] == pytest.approx(29.0)
        assert deltas["prefix_removal"] == pytest.approx(28.0)
        ordering = sorted(deltas, key=deltas.get, reverse=True)
        assert ordering == [
            "inverse_ofdm",
            "remainder",
            "freq_offset_correction",
            "prefix_removal",
        ]


class TestAssignmentOptions:
    def test_options_sorted_by_cost_then_tile(self):
        cheap = _impl("p", "M", 5.0)
        expensive = _impl("p", "ARM", 9.0)
        options = assignment_options(
            "p", [(expensive, ["arm2", "arm1"]), (cheap, ["m1"])]
        )
        assert [o.tile for o in options] == ["m1", "arm1", "arm2"]
        assert options[0].implementation is cheap

    def test_empty_candidates_give_empty_options(self):
        assert assignment_options("p", []) == []
