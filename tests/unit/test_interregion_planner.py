"""The inter-region planner: decomposition, commit atomicity, budgets, scope."""

import pytest

from repro.exceptions import PlatformError
from repro.interregion.planner import CorridorScope, InterRegionPlanner
from repro.platform.regions import RegionPartition
from repro.runtime.manager import RuntimeResourceManager
from repro.runtime.pipeline import AdmissionPipeline
from repro.spatialmapper.config import MapperConfig
from repro.workloads.synthetic import SyntheticConfig, generate_application, generate_region_mesh

CONFIG = SyntheticConfig(stages=4, period_ns=100_000.0, tile_types=("GPP", "DSP"))


def make_manager(*, fraction=0.5, regions=2, span=4):
    platform = generate_region_mesh(regions, span)
    partition = RegionPartition.grid(platform, regions, regions)
    return RuntimeResourceManager(
        platform,
        config=MapperConfig(analysis_iterations=3),
        partition=partition,
        cross_region_planner=True,
        corridor_budget_fraction=fraction,
    )


def cross_app(seed, name, source="io_r0_0", sink="io_r1_1"):
    return generate_application(seed, CONFIG, name=name, source_tile=source, sink_tile=sink)


def regional_app(seed, name, io="io_r0_0"):
    return generate_application(seed, CONFIG, name=name, source_tile=io, sink_tile=io)


class TestApplicability:
    def test_single_region_app_is_out_of_scope(self):
        manager = make_manager()
        planner = manager.pipeline.interregion
        app = regional_app(1, "local")
        assert planner.scope_for(app.als) is None
        decision = planner.decide(app.als, app.library)
        assert not decision.admitted and "not applicable" in decision.reason

    def test_scope_covers_anchors_and_corridor_path(self):
        manager = make_manager()
        planner = manager.pipeline.interregion
        app = cross_app(2, "diag")
        scope = planner.scope_for(app.als)
        assert scope is not None
        assert {"r0_0", "r1_1"} <= set(scope)
        # Diagonal anchors need at least one intermediate region.
        assert len(scope) >= 3

    def test_planner_requires_a_partition(self):
        platform = generate_region_mesh(2, 4)
        pipeline = AdmissionPipeline(platform)
        with pytest.raises(PlatformError):
            InterRegionPlanner(pipeline)

    def test_manager_flag_requires_partition(self):
        platform = generate_region_mesh(2, 4)
        with pytest.raises(PlatformError):
            RuntimeResourceManager(platform, cross_region_planner=True)


class TestAdmission:
    def test_cross_region_admission_is_complete_and_committed(self):
        manager = make_manager()
        planner = manager.pipeline.interregion
        app = cross_app(7, "xapp")
        decision = manager.admit(app.als, library=app.library)
        assert decision.admitted, decision.reason
        result = decision.result
        assert result.mapping.is_complete(app.als)
        assert result.status.value == "feasible"
        # Only real application keys survive: the boundary pseudo-endpoints
        # and pseudo-channels of segment mapping never leak into the result.
        assert all(
            app.als.kpn.has_process(a.process) for a in result.mapping.assignments
        ), [a.process for a in result.mapping.assignments]
        assert all(
            app.als.kpn.has_channel(r.channel) for r in result.mapping.routes
        )
        # Allocations really landed in several regions, with a corridor.
        touched = manager.pipeline.regions_of("xapp")
        assert len(touched) >= 2
        reserved = [
            pair for pair in planner.budgets.pairs()
            if planner.budgets.reserved_bits_per_s(*pair) > 0
        ]
        assert reserved, "no corridor budget was reserved"
        # Every route connects its endpoint tiles contiguously over real links.
        noc = manager.platform.noc
        for route in result.mapping.routes:
            assert route.path[0] == manager.platform.tile(route.source_tile).position
            assert route.path[-1] == manager.platform.tile(route.target_tile).position
            for a, b in zip(route.path, route.path[1:]):
                assert noc.has_link(a, b)

    def test_stop_releases_allocations_and_budgets(self):
        manager = make_manager()
        planner = manager.pipeline.interregion
        empty = planner.budgets.fingerprint()
        app = cross_app(8, "ephemeral")
        assert manager.admit(app.als, library=app.library).admitted
        manager.stop("ephemeral")
        assert planner.budgets.fingerprint() == empty
        assert manager.state.occupied_tiles() == ()
        assert manager.state.link_loads() == {}

    def test_exhausted_budget_rejects_and_falls_back_globally(self):
        # A vanishingly small corridor budget: the planner cannot reserve,
        # but the admission still succeeds through the global fallback.
        manager = make_manager(fraction=1e-9)
        app = cross_app(9, "fallback")
        planned = manager.pipeline.interregion.decide(app.als, app.library)
        assert not planned.admitted
        assert "corridor" in planned.reason or "budget" in planned.reason
        decision = manager.admit(app.als, library=app.library)
        assert decision.admitted, decision.reason
        # The fallback committed nothing through the planner's budgets.
        assert manager.pipeline.interregion.budgets.applications() == ()

    def test_rejected_plan_leaves_state_untouched(self):
        manager = make_manager(fraction=1e-9)
        fingerprint = manager.state.fingerprint()
        app = cross_app(10, "spotless")
        decision = manager.pipeline.interregion.decide(app.als, app.library)
        assert not decision.admitted
        assert manager.state.fingerprint() == fingerprint
        assert manager.state.occupied_tiles() == ()

    def test_planner_decisions_are_deterministic(self):
        app = cross_app(11, "det")
        mappings = []
        for _ in range(2):
            manager = make_manager()
            decision = manager.pipeline.interregion.decide(app.als, app.library)
            assert decision.admitted
            mappings.append(
                (
                    tuple(
                        (a.process, a.tile) for a in decision.result.mapping.assignments
                    ),
                    tuple(
                        (r.channel, r.path) for r in decision.result.mapping.routes
                    ),
                )
            )
        assert mappings[0] == mappings[1]


class TestCorridorScope:
    def test_scope_covers_regions_and_boundary_links(self):
        manager = make_manager()
        partition = manager.partition
        regions = (partition.region("r0_0"), partition.region("r0_1"))
        boundary = manager.pipeline.interregion.budgets.links_between("r0_0", "r0_1")
        scope = CorridorScope(regions, frozenset(boundary[:1]))
        assert scope.covers_tile(regions[0].tile_names[0])
        assert scope.covers_link(regions[1].link_names[0])
        assert scope.covers_link(boundary[0])
        assert not scope.covers_link(boundary[1])
        outside = partition.region("r1_1")
        assert not scope.covers_tile(outside.tile_names[0])
