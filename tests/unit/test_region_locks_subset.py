"""RegionLocks subset lanes: semantics, stats, and deadlock freedom.

The deadlock-freedom argument is the fixed sorted-name acquisition order.
The property test here exercises it the hard way: many threads repeatedly
acquiring *random* subsets (including overlapping ones and the full set)
must all terminate — a bounded join is the oracle — while the holder
bookkeeping stays consistent throughout.
"""

import random
import threading

import pytest

from repro.exceptions import PlatformError
from repro.interregion.coordinator import InterRegionCoordinator
from repro.platform.regions import RegionLocks, RegionPartition
from repro.workloads.synthetic import generate_region_mesh


@pytest.fixture()
def partition():
    return RegionPartition.grid(generate_region_mesh(2, 2), 2, 2)


@pytest.fixture()
def locks(partition):
    return RegionLocks(partition)


class TestSubsetLane:
    def test_holds_exactly_the_subset(self, locks):
        with locks.subset_lane(("r1_0", "r0_0")):
            assert locks.holds("r0_0") and locks.holds("r1_0")
            assert not locks.holds("r0_1") and not locks.holds("r1_1")
            assert not locks.holds_all()
        assert not locks.holds("r0_0")

    def test_global_lane_is_the_full_subset(self, locks):
        with locks.global_lane():
            assert locks.holds_all()
        assert not locks.holds_all()

    def test_unknown_region_rejected(self, locks):
        with pytest.raises(PlatformError):
            with locks.subset_lane(("r0_0", "nope")):
                pass

    def test_empty_subset_rejected(self, locks):
        with pytest.raises(PlatformError):
            with locks.subset_lane(()):
                pass

    def test_reentrant_within_a_thread(self, locks):
        with locks.subset_lane(("r0_0", "r0_1")):
            with locks.subset_lane(("r0_0",)):
                assert locks.holds("r0_0")
            assert locks.holds("r0_0")

    def test_subset_excludes_only_the_subset(self, locks):
        """A worker of an untouched region proceeds while the subset is held."""
        entered = threading.Event()
        release = threading.Event()
        witness = threading.Event()

        def holder():
            with locks.subset_lane(("r0_0", "r0_1")):
                entered.set()
                release.wait(timeout=5.0)

        def bystander():
            entered.wait(timeout=5.0)
            with locks.region_lane("r1_1"):
                witness.set()

        threads = [threading.Thread(target=holder), threading.Thread(target=bystander)]
        for thread in threads:
            thread.start()
        assert witness.wait(timeout=5.0), "disjoint region was blocked by a lock subset"
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
            assert not thread.is_alive()

    def test_stats_accumulate(self, locks):
        with locks.subset_lane(("r0_0", "r1_0")):
            pass
        stats = locks.stats()
        assert stats["r0_0"]["acquisitions"] == 1
        assert stats["r1_0"]["acquisitions"] == 1
        assert stats["r0_1"]["acquisitions"] == 0
        assert stats["r0_0"]["hold_s"] >= 0.0


class TestDeadlockFreedom:
    def test_random_concurrent_subsets_terminate(self, partition, locks):
        """Threads hammering random (overlapping) subsets must all finish."""
        names = [region.name for region in partition]
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for _ in range(60):
                    size = rng.randint(1, len(names))
                    subset = rng.sample(names, size)
                    with locks.subset_lane(subset):
                        for name in subset:
                            assert locks.holds(name)
            except BaseException as error:  # surfaced by the main thread
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
            assert not thread.is_alive(), "subset lanes deadlocked"
        assert not errors, errors
        # Everything is released again.
        for name in names:
            assert not locks.holds(name)

    def test_coordinator_admission_lane_sorts_and_shares(self, partition):
        coordinator = InterRegionCoordinator(partition)
        with coordinator.admission_lane(["r1_0", "r0_0"]) as ordered:
            assert ordered == ("r0_0", "r1_0")
            assert coordinator.locks.holds("r0_0")
        assert not coordinator.locks.holds("r0_0")
