"""Composite region scoring, shape fingerprints and the rejection memory."""

import dataclasses

import pytest

from repro.appmodel.library import ImplementationLibrary
from repro.exceptions import PlatformError
from repro.kpn.als import ApplicationLevelSpec
from repro.kpn.graph import KPNGraph
from repro.platform.state import LinkAllocation, PlatformState, ProcessAllocation
from repro.spatialmapper.desirability import tile_type_demands
from repro.spatialmapper.region_score import (
    RegionScorePolicy,
    RegionScorer,
    RejectionMemory,
    shape_fingerprint,
)
from tests.harness import (
    build_two_region_platform,
    make_app,
    make_manager,
    two_region_partition,
)


def renamed_copy(app, suffix="_renamed"):
    """The same application with every process (and channel) renamed."""
    mapping = {p.name: f"{p.name}{suffix}" for p in app.als.kpn.processes}
    kpn = KPNGraph(f"{app.als.kpn.name}{suffix}")
    for process in app.als.kpn.processes:
        kpn.add_process(dataclasses.replace(process, name=mapping[process.name]))
    for channel in app.als.kpn.channels:
        kpn.add_channel(
            dataclasses.replace(
                channel,
                name=f"{channel.name}{suffix}",
                source=mapping[channel.source],
                target=mapping[channel.target],
            )
        )
    library = ImplementationLibrary(
        dataclasses.replace(
            implementation, process=mapping[implementation.process], name=""
        )
        for implementation in app.library.implementations()
    )
    als = ApplicationLevelSpec(kpn=kpn, qos=app.als.qos, name=f"{app.als.name}{suffix}")
    return als, library


class TestShapeFingerprint:
    def test_stable_under_renaming(self):
        app = make_app(7, "original", "io_l")
        als, library = renamed_copy(app)
        assert shape_fingerprint(app.als, app.library) == shape_fingerprint(als, library)

    def test_differs_for_different_shapes(self):
        left = make_app(7, "one", "io_l")
        right = make_app(8, "two", "io_l")
        assert shape_fingerprint(left.als, left.library) != shape_fingerprint(
            right.als, right.library
        )

    def test_sensitive_to_pinned_tile(self):
        left = make_app(7, "one", "io_l")
        right = make_app(7, "one", "io_r")
        assert shape_fingerprint(left.als, left.library) != shape_fingerprint(
            right.als, right.library
        )


class TestTileTypeDemands:
    def test_inflexible_process_is_exclusive_demand(self):
        app = make_app(3, "demand", "io_l")
        demands = tile_type_demands(app.als, app.library)
        # The harness config generates GPP-only implementations: every
        # mappable process is exclusive demand on GPP.
        assert demands == {"GPP": pytest.approx(len(app.als.kpn.mappable_processes()))}

    def test_flexible_process_dilutes(self, two_stage_als):
        from repro.appmodel.implementation import Implementation

        library = ImplementationLibrary(
            [
                Implementation("a", "GPP", [100.0]),
                Implementation("a", "DSP", [50.0]),
                Implementation("b", "GPP", [100.0]),
            ]
        )
        demands = tile_type_demands(two_stage_als, library)
        assert demands["GPP"] == pytest.approx(1.5)
        assert demands["DSP"] == pytest.approx(0.5)


class TestRejectionMemory:
    SHAPE = ("shape",)

    def test_record_and_penalty(self):
        memory = RejectionMemory(decay=0.5)
        assert memory.penalty("r0", self.SHAPE) == 0.0
        memory.record("r0", self.SHAPE)
        memory.record("r0", self.SHAPE)
        assert memory.penalty("r0", self.SHAPE) == pytest.approx(2.0)
        assert memory.penalty("r1", self.SHAPE) == 0.0

    def test_decay_and_pruning(self):
        memory = RejectionMemory(decay=0.5, min_weight=0.2)
        memory.record("r0", self.SHAPE)
        memory.tick()
        assert memory.penalty("r0", self.SHAPE) == pytest.approx(0.5)
        memory.tick()
        # 0.25 >= min_weight: still there; one more tick prunes.
        assert memory.penalty("r0", self.SHAPE) == pytest.approx(0.25)
        memory.tick()
        assert memory.penalty("r0", self.SHAPE) == 0.0
        assert len(memory) == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(PlatformError):
            RejectionMemory(decay=1.0)
        with pytest.raises(PlatformError):
            RejectionMemory(min_weight=0.0)
        with pytest.raises(PlatformError):
            RejectionMemory().record("r0", self.SHAPE, weight=0.0)

    def test_transaction_rollback_restores_bit_identically(self):
        memory = RejectionMemory(decay=0.5)
        memory.record("r0", self.SHAPE)
        memory.tick()
        before = memory.fingerprint()
        with pytest.raises(RuntimeError):
            with memory.transaction():
                memory.record("r0", self.SHAPE)
                memory.record("r1", ("other",))
                memory.tick()
                memory.tick()
                raise RuntimeError("abort")
        assert memory.fingerprint() == before
        assert memory.penalty("r1", ("other",)) == 0.0

    def test_nested_commit_folds_into_aborted_outer(self):
        memory = RejectionMemory(decay=0.5)
        before = memory.fingerprint()
        with pytest.raises(RuntimeError):
            with memory.transaction():
                with memory.transaction():
                    memory.record("r0", self.SHAPE)
                    memory.tick()
                # Inner committed; outer abort must still undo it.
                raise RuntimeError("abort")
        assert memory.fingerprint() == before

    def test_committed_transaction_keeps_updates(self):
        memory = RejectionMemory(decay=0.5)
        with memory.transaction():
            memory.record("r0", self.SHAPE)
        assert memory.penalty("r0", self.SHAPE) == pytest.approx(1.0)


def occupy_slot(state, platform, tile_name):
    """Burn one process slot on a tile (bookkeeping-only occupant)."""
    state.allocate_process(
        ProcessAllocation(application="filler", process=f"f_{tile_name}", tile=tile_name)
    )


class TestRegionScorer:
    def test_fill_only_policy_equals_fill_level(self):
        platform = build_two_region_platform()
        partition = two_region_partition(platform)
        state = PlatformState(platform)
        app = make_app(11, "probe", "io_l")
        scorer = RegionScorer(RegionScorePolicy.fill_only())
        for region in partition:
            assert scorer.score(app.als, app.library, region, state) == pytest.approx(
                region.view(state).fill_level()
            )

    def test_residual_scarcity_prefers_free_tile_type(self):
        platform = build_two_region_platform()
        partition = two_region_partition(platform)
        state = PlatformState(platform)
        # Left region: 2 of 3 GPP hosts burn a slot each (scarce); right free.
        occupy_slot(state, platform, "gpp_l0")
        occupy_slot(state, platform, "gpp_l1")
        app = make_app(11, "probe", "io_l")
        scorer = RegionScorer(
            RegionScorePolicy(
                fill_weight=0.0, residual_weight=1.0, pressure_weight=0.0
            )
        )
        left = scorer.score(app.als, app.library, partition.region("r0_0"), state)
        right = scorer.score(app.als, app.library, partition.region("r1_0"), state)
        assert left > right > 0.0

    def test_routing_pressure_prefers_link_headroom(self):
        platform = build_two_region_platform()
        partition = two_region_partition(platform)
        state = PlatformState(platform)
        left_region = partition.region("r0_0")
        for link_name in left_region.link_names:
            state.allocate_link(
                LinkAllocation(
                    application="filler",
                    channel=f"c_{link_name}",
                    link=link_name,
                    bits_per_s=3e9,
                )
            )
        app = make_app(11, "probe", "io_l")
        scorer = RegionScorer(
            RegionScorePolicy(
                fill_weight=0.0, residual_weight=0.0, pressure_weight=1.0
            )
        )
        left = scorer.score(app.als, app.library, left_region, state)
        right = scorer.score(app.als, app.library, partition.region("r1_0"), state)
        assert left > right > 0.0

    def test_feedback_penalty_demotes_and_excludes(self):
        scorer = RegionScorer.adaptive(
            RegionScorePolicy(
                fill_weight=1.0,
                residual_weight=0.0,
                pressure_weight=0.0,
                feedback_weight=1.0,
                exclude_threshold=3.0,
            )
        )
        platform = build_two_region_platform()
        partition = two_region_partition(platform)
        state = PlatformState(platform)
        app = make_app(11, "probe", "io_l")
        shape = scorer.shape_of(app.als, app.library)
        baseline = scorer.score(
            app.als, app.library, partition.region("r0_0"), state, shape=shape
        )
        scorer.feedback.record("r0_0", shape)
        demoted = scorer.score(
            app.als, app.library, partition.region("r0_0"), state, shape=shape
        )
        assert demoted == pytest.approx(baseline + 1.0)
        assert not scorer.excludes("r0_0", shape)
        scorer.feedback.record("r0_0", shape, weight=2.5)
        assert scorer.excludes("r0_0", shape)
        assert not scorer.excludes("r1_0", shape)


class TestPipelineIntegration:
    def test_excluded_region_is_skipped_by_candidate_regions(self):
        scorer = RegionScorer.adaptive(
            RegionScorePolicy(exclude_threshold=1.0)
        )
        manager = make_manager(region_scorer=scorer)
        app = make_app(21, "excluded", "io_l")
        # io_l pins the app into r0_0; a recorded rejection past the
        # threshold must drop r0_0, leaving only the global fallback.
        shape = scorer.shape_of(app.als, app.library)
        with_feedback = manager.pipeline.candidate_regions(app.als, app.library)
        assert [r.name for r in with_feedback if r is not None] == ["r0_0"]
        scorer.feedback.record("r0_0", shape, weight=2.0)
        candidates = manager.pipeline.candidate_regions(app.als, app.library)
        assert [r for r in candidates if r is not None] == []
        assert candidates[-1] is None  # the global fallback survives

    def test_rejection_feedback_recorded_at_finalisation(self):
        scorer = RegionScorer.adaptive()
        manager = make_manager(region_scorer=scorer)
        # Saturate the left region's internal links: the region still
        # *qualifies* (slots and tile types are free), but routing the
        # pinned-I/O channels must fail — an in-region mapping failure, the
        # signal the rejection memory records.
        left_region = manager.partition.region("r0_0")
        for link_name in left_region.link_names:
            manager.state.allocate_link(
                LinkAllocation(
                    application="hog",
                    channel=f"c_{link_name}",
                    link=link_name,
                    bits_per_s=4e9 - 1.0,
                )
            )
        straggler = make_app(40, "straggler", "io_l")
        decision = manager.admit(straggler.als, library=straggler.library)
        assert not decision.admitted
        assert "r0_0" in decision.attempted_regions
        assert decision.shape is not None
        for region_name in decision.attempted_regions:
            assert scorer.feedback.penalty(region_name, decision.shape) > 0.0

    def test_all_or_nothing_rollback_erases_feedback(self):
        scorer = RegionScorer.adaptive()
        manager = make_manager(region_scorer=scorer)
        before = scorer.feedback.fingerprint()
        ok = make_app(50, "ok", "io_l")
        hopeless = [make_app(51 + i, f"nope{i}", "io_l") for i in range(6)]
        outcome = manager.start_many(
            [(app.als, app.library) for app in (ok, *hopeless)], all_or_nothing=True
        )
        assert outcome.rejected, "batch was expected to overflow the platform"
        assert scorer.feedback.fingerprint() == before
