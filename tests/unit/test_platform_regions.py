"""Region partitions, per-region views and region-scoped transactions."""

import pytest

from repro.exceptions import PlatformError
from repro.platform.regions import Region, RegionPartition
from repro.platform.state import LinkAllocation, PlatformState, ProcessAllocation
from repro.workloads.synthetic import generate_platform


@pytest.fixture()
def platform():
    """A 4x4 synthetic mesh (io corners + random processing tiles)."""
    return generate_platform(seed=5, width=4, height=4)


@pytest.fixture()
def halves(platform):
    """The mesh split into a left and a right region."""
    return RegionPartition.grid(platform, 2, 1)


def _alloc(tile, application="app", process="p0"):
    return ProcessAllocation(
        application=application, process=process, tile=tile, memory_bytes=1024
    )


class TestRegionPartition:
    def test_grid_covers_every_tile_exactly_once(self, platform, halves):
        owners = {}
        for region in halves:
            for tile in region.tile_names:
                assert tile not in owners
                owners[tile] = region.name
        assert set(owners) == set(platform.tile_names)

    def test_region_of_tile_matches_membership(self, platform, halves):
        for tile in platform.tile_names:
            region = halves.region_of_tile(tile)
            assert tile in region
            assert halves.region_of_tile(tile) is region

    def test_internal_and_cross_links_partition_the_noc(self, platform, halves):
        internal = {name for region in halves for name in region.link_names}
        cross = set(halves.cross_link_names())
        every = {link.name for link in platform.noc.links}
        assert internal | cross == every
        assert internal & cross == set()
        assert cross  # a split mesh always has boundary links

    def test_single_partition_spans_everything(self, platform):
        partition = RegionPartition.single(platform)
        region = partition.regions[0]
        assert set(region.tile_names) == set(platform.tile_names)
        assert partition.cross_link_names() == ()

    def test_overlapping_regions_rejected(self, platform):
        a = Region("a", platform, platform.noc.positions)
        b = Region("b", platform, platform.noc.positions[:1])
        with pytest.raises(PlatformError):
            RegionPartition(platform, [a, b])

    def test_uncovered_tile_rejected(self, platform):
        some = Region("some", platform, platform.noc.positions[:1])
        with pytest.raises(PlatformError):
            RegionPartition(platform, [some])

    def test_grid_bounds_validated(self, platform):
        with pytest.raises(PlatformError):
            RegionPartition.grid(platform, 0, 1)
        with pytest.raises(PlatformError):
            RegionPartition.grid(platform, 5, 1)


class TestRegionView:
    def test_fill_level_tracks_allocations(self, platform, halves):
        state = PlatformState(platform)
        region = halves.regions[0]
        view = region.view(state)
        assert view.fill_level() == 0.0
        tile = region.processing_tile_names()[0]
        state.allocate_process(_alloc(tile))
        assert view.used_process_slots() == 1
        assert view.fill_level() > 0.0
        # The other region's view is untouched.
        assert halves.regions[1].view(state).used_process_slots() == 0

    def test_fingerprint_changes_and_restores(self, platform, halves):
        state = PlatformState(platform)
        region = halves.regions[0]
        other = halves.regions[1]
        empty = region.fingerprint(state)
        other_empty = other.fingerprint(state)
        tile = region.processing_tile_names()[0]
        state.allocate_process(_alloc(tile))
        assert region.fingerprint(state) != empty
        # Disjoint region: fingerprint untouched by the allocation.
        assert other.fingerprint(state) == other_empty
        state.release_application("app")
        assert region.fingerprint(state) == empty


class TestScopedTransactions:
    def test_sibling_region_scopes_keep_independent_journals(self, platform, halves):
        left, right = halves.regions
        state = PlatformState(platform)
        left_tile = left.processing_tile_names()[0]
        right_tile = right.processing_tile_names()[0]
        with state.transaction(left):
            state.allocate_process(_alloc(left_tile, application="l"))
            with state.transaction(right) as inner:
                state.allocate_process(_alloc(right_tile, application="r"))
                inner.rollback()
            # The right-region rollback must not disturb the left allocation.
            assert state.used_process_slots(left_tile) == 1
            assert state.used_process_slots(right_tile) == 0
        assert state.used_process_slots(left_tile) == 1

    def test_outer_region_rollback_spares_committed_sibling(self, platform, halves):
        left, right = halves.regions
        state = PlatformState(platform)
        left_tile = left.processing_tile_names()[0]
        right_tile = right.processing_tile_names()[0]
        with state.transaction(left) as outer:
            state.allocate_process(_alloc(left_tile, application="l"))
            with state.transaction(right):
                state.allocate_process(_alloc(right_tile, application="r"))
            outer.rollback()
        # Only the left-region mutation is undone; the committed right-region
        # admission survives — per-region commit isolation.
        assert state.used_process_slots(left_tile) == 0
        assert state.used_process_slots(right_tile) == 1

    def test_mutation_outside_every_open_scope_raises(self, platform, halves):
        left, right = halves.regions
        state = PlatformState(platform)
        right_tile = right.processing_tile_names()[0]
        with pytest.raises(PlatformError):
            with state.transaction(left):
                state.allocate_process(_alloc(right_tile))
        # The failed mutation never happened.
        assert state.used_process_slots(right_tile) == 0

    def test_enclosing_global_scope_catches_out_of_region_keys(self, platform, halves):
        left, right = halves.regions
        state = PlatformState(platform)
        right_tile = right.processing_tile_names()[0]
        with state.transaction() as outer:
            with state.transaction(left):
                # Outside `left`, but the enclosing global transaction covers it.
                state.allocate_process(_alloc(right_tile))
            outer.rollback()
        assert state.used_process_slots(right_tile) == 0

    def test_scoped_link_journal(self, platform, halves):
        left = halves.regions[0]
        state = PlatformState(platform)
        link_name = left.link_names[0]
        with state.transaction(left) as txn:
            state.allocate_link(
                LinkAllocation(
                    application="app", channel="c", link=link_name, bits_per_s=1e6
                )
            )
            txn.rollback()
        assert state.link_load_bits_per_s(link_name) == 0.0
        cross = halves.cross_link_names()[0]
        with pytest.raises(PlatformError):
            with state.transaction(left):
                state.allocate_link(
                    LinkAllocation(
                        application="app", channel="c", link=cross, bits_per_s=1e6
                    )
                )
        assert state.link_load_bits_per_s(cross) == 0.0
