"""Arrival-process generators and the scenarios they produce."""

import random

import pytest

from repro.runtime.events import StartEvent, StopEvent
from repro.workloads.arrivals import (
    BurstyArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    TrafficClass,
    generate_workload,
    offered_rate_per_s,
)
from repro.workloads.synthetic import SyntheticConfig

CONFIG = SyntheticConfig(stages=2, period_ns=100_000.0, tile_types=("GPP",))
MILLISECOND = 1e6


class TestArrivalProcesses:
    def test_poisson_rate_scales_arrival_count(self):
        rng = random.Random(1)
        slow = PoissonArrivals(rate_per_s=1000.0).arrival_times_ns(rng, 50 * MILLISECOND)
        rng = random.Random(1)
        fast = PoissonArrivals(rate_per_s=4000.0).arrival_times_ns(rng, 50 * MILLISECOND)
        assert len(fast) > 2 * len(slow)
        assert slow == sorted(slow)
        assert all(0 < t < 50 * MILLISECOND for t in slow)

    def test_poisson_scaled_constructor(self):
        process = PoissonArrivals(rate_per_s=100.0).scaled(3.0)
        assert process.rate_per_s == pytest.approx(300.0)
        assert process.nominal_rate_per_s() == pytest.approx(300.0)

    def test_bursty_arrivals_cluster(self):
        process = BurstyArrivals(
            burst_rate_per_s=200.0, burst_size_range=(3, 3), intra_burst_gap_ns=500.0
        )
        times = process.arrival_times_ns(random.Random(2), 100 * MILLISECOND)
        assert times == sorted(times)
        assert len(times) >= 6
        gaps = [b - a for a, b in zip(times, times[1:])]
        # Two of every three gaps are intra-burst (the configured 500 ns).
        intra = [gap for gap in gaps if gap == pytest.approx(500.0)]
        assert len(intra) >= len(gaps) // 3
        assert process.nominal_rate_per_s() == pytest.approx(600.0)

    def test_periodic_arrivals_spacing(self):
        process = PeriodicArrivals(period_ns=2 * MILLISECOND)
        times = process.arrival_times_ns(random.Random(3), 10 * MILLISECOND)
        assert times == [0.0, 2 * MILLISECOND, 4 * MILLISECOND, 6 * MILLISECOND, 8 * MILLISECOND]
        jittered = PeriodicArrivals(period_ns=2 * MILLISECOND, jitter_ns=1000.0)
        times = jittered.arrival_times_ns(random.Random(3), 10 * MILLISECOND)
        assert len(times) == 5
        assert all(
            index * 2 * MILLISECOND <= t <= index * 2 * MILLISECOND + 1000.0
            for index, t in enumerate(times)
        )

    def test_periodic_scaled_divides_period(self):
        process = PeriodicArrivals(period_ns=8 * MILLISECOND).scaled(2.0)
        assert process.period_ns == pytest.approx(4 * MILLISECOND)
        with pytest.raises(ValueError):
            process.scaled(0.0)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicArrivals(period_ns=0.0).arrival_times_ns(random.Random(0), MILLISECOND)


class TestGenerateWorkload:
    def classes(self):
        return [
            TrafficClass(
                "steady",
                PoissonArrivals(rate_per_s=800.0),
                config=CONFIG,
                priority=1,
                admission_window_ns=2 * MILLISECOND,
                hold_range_ns=(MILLISECOND, 3 * MILLISECOND),
            ),
            TrafficClass(
                "bursts",
                BurstyArrivals(burst_rate_per_s=300.0),
                config=CONFIG,
            ),
        ]

    def test_deterministic_for_equal_seeds(self):
        first = generate_workload(11, 20 * MILLISECOND, self.classes())
        second = generate_workload(11, 20 * MILLISECOND, self.classes())
        key = lambda s: [  # noqa: E731
            (type(e).__name__, e.time_ns, getattr(e, "application", ""))
            for e in s.sorted_events()
        ]
        assert key(first) == key(second)
        third = generate_workload(12, 20 * MILLISECOND, self.classes())
        assert key(first) != key(third)

    def test_start_events_carry_class_attributes(self):
        scenario = generate_workload(13, 20 * MILLISECOND, self.classes())
        starts = [e for e in scenario.events if isinstance(e, StartEvent)]
        steady = [e for e in starts if e.application.startswith("steady_")]
        bursts = [e for e in starts if e.application.startswith("bursts_")]
        assert steady and bursts
        assert all(e.priority == 1 for e in steady)
        assert all(e.deadline_ns == pytest.approx(e.time_ns + 2 * MILLISECOND) for e in steady)
        assert all(e.priority == 0 and e.deadline_ns is None for e in bursts)

    def test_departures_follow_their_arrivals(self):
        scenario = generate_workload(14, 20 * MILLISECOND, self.classes())
        arrival_of = {
            e.application: e.time_ns
            for e in scenario.events
            if isinstance(e, StartEvent)
        }
        stops = [e for e in scenario.events if isinstance(e, StopEvent)]
        assert stops, "the steady class has holding times, so departures exist"
        for stop in stops:
            assert stop.application.startswith("steady_")
            assert arrival_of[stop.application] + MILLISECOND <= stop.time_ns
            assert stop.time_ns < 20 * MILLISECOND

    def test_each_arrival_is_a_distinct_application(self):
        scenario = generate_workload(15, 20 * MILLISECOND, self.classes())
        starts = [e for e in scenario.events if isinstance(e, StartEvent)]
        names = [e.application for e in starts]
        assert len(names) == len(set(names))
        libraries = {id(e.library) for e in starts}
        assert len(libraries) == len(starts)

    def test_horizon_is_the_scenario_duration(self):
        scenario = generate_workload(16, 20 * MILLISECOND, self.classes())
        assert scenario.end_time_ns() == pytest.approx(20 * MILLISECOND)
        with pytest.raises(ValueError):
            generate_workload(16, 0.0, self.classes())

    def test_offered_rate_sums_over_classes(self):
        assert offered_rate_per_s(self.classes()) == pytest.approx(
            800.0 + 300.0 * (2 + 5) / 2
        )

    def test_scaled_class_changes_offered_load_only(self):
        scaled = [c.scaled(2.0) for c in self.classes()]
        assert offered_rate_per_s(scaled) == pytest.approx(
            2 * offered_rate_per_s(self.classes())
        )
        assert [c.name for c in scaled] == [c.name for c in self.classes()]

    def test_merged_streams_sort_deterministically(self):
        # The monotonic sequence number breaks equal-time ties: shuffling the
        # merged event list (destroying any insertion-order stability) must
        # not change the replay order.
        scenario = generate_workload(17, 20 * MILLISECOND, self.classes())
        reference = scenario.sorted_events()
        shuffled = list(scenario.events)
        random.Random(99).shuffle(shuffled)
        scenario.events = shuffled
        assert scenario.sorted_events() == reference
        for earlier, later in zip(reference, reference[1:]):
            if earlier.time_ns == later.time_ns:
                assert earlier.seq < later.seq
