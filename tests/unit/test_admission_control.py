"""The load-shedding governor and its engine/queue integration."""

import dataclasses
import threading

import pytest

from repro.runtime.admission_control import (
    GovernorConfig,
    GovernorDecision,
    LoadSheddingGovernor,
)
from repro.runtime.engine import EngineOutcome, WorkloadEngine
from repro.runtime.events import StartEvent
from repro.runtime.queue import AdmissionQueue, RequestStatus
from repro.runtime.scenario import Scenario
from tests.harness import (
    MILLISECOND,
    make_app,
    make_engine,
    make_manager,
    two_region_classes,
    two_region_workload,
)

FAST = GovernorConfig(rate_floor=0.5, resume_margin=0.1, window=8, min_samples=4)


class TestGovernorConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_floor": 0.0},
            {"rate_floor": 1.0},
            {"resume_margin": -0.1},
            {"window": 0},
            {"min_samples": 0},
            {"window": 4, "min_samples": 8},
            {"mode": "drop"},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GovernorConfig(**kwargs)


class TestGovernorStateMachine:
    def test_cold_window_never_sheds(self):
        governor = LoadSheddingGovernor(FAST)
        for _ in range(FAST.min_samples - 1):
            governor.observe(0, False)
        assert not governor.shedding
        assert governor.assess(0) == GovernorDecision.PROCEED

    def test_engages_below_floor_and_recovers_with_hysteresis(self):
        governor = LoadSheddingGovernor(FAST)
        for _ in range(4):
            governor.observe(0, False)
        assert governor.shedding
        assert governor.assess(0) == GovernorDecision.SHED
        # Priorities above the shed ceiling always proceed.
        assert governor.assess(1) == GovernorDecision.PROCEED
        # Recovery requires clearing floor + margin, not just the floor.
        governor.observe(0, True)
        governor.observe(0, True)
        governor.observe(0, True)
        governor.observe(0, True)  # rate now 4/8 = 0.5: at floor, not past margin
        assert governor.shedding
        governor.observe(0, True)  # 5/8 = 0.625 >= 0.6
        assert not governor.shedding
        assert governor.transitions == 2

    def test_per_priority_rates_tracked(self):
        governor = LoadSheddingGovernor(FAST)
        governor.observe(0, False)
        governor.observe(2, True)
        assert governor.admission_rate(0) == 0.0
        assert governor.admission_rate(2) == 1.0
        assert governor.admission_rate() == 0.5
        assert governor.admission_rate(7) == 1.0  # unmeasured: presumed healthy

    def test_defer_mode_and_counters(self):
        governor = LoadSheddingGovernor(GovernorConfig(mode="defer", window=4, min_samples=2))
        governor.observe(0, False)
        governor.observe(0, False)
        assert governor.assess(0) == GovernorDecision.DEFER
        assert governor.snapshot()["deferred"] == 1

    def test_disabled_governor_is_inert(self):
        governor = LoadSheddingGovernor(FAST, enabled=False)
        for _ in range(8):
            governor.observe(0, False)
        assert not governor.shedding
        assert governor.assess(0) == GovernorDecision.PROCEED


def overloaded_workload(seed=77):
    """The harness mix scaled far past the two-region platform's capacity."""
    classes = [
        traffic.scaled(6.0)
        for traffic in two_region_classes(hold_range_ns=(4 * MILLISECOND, 8 * MILLISECOND))
    ]
    # Give the left lane's Poisson class priority so shedding has a
    # protected tier and a sheddable tier.
    classes[0] = dataclasses.replace(classes[0], priority=2, name="left_hi")
    return two_region_workload(seed, 10 * MILLISECOND, classes, name="overload")


class TestEngineIntegration:
    def test_governor_sheds_only_low_priority_and_journals_telemetry(self):
        workload = overloaded_workload()
        manager = make_manager()
        governor = LoadSheddingGovernor(FAST)
        outcome = make_engine(manager, governor=governor, park_rejections=True).run(
            workload
        )
        assert outcome.shed, "overload was expected to trigger shedding"
        shed_records = [r for r in outcome.records if r.status is RequestStatus.SHED]
        assert all(r.priority <= FAST.shed_max_priority for r in shed_records)
        assert all("shed by load governor" in r.reason for r in shed_records)
        lanes_shed = sum(c.shed for c in outcome.telemetry.lanes.values())
        assert lanes_shed == len(shed_records)
        snapshot = outcome.telemetry.governor
        assert snapshot is not None
        assert snapshot["shed"] >= len(shed_records)
        assert snapshot["transitions"] >= 1
        assert 2 in snapshot["rate_by_priority"]

    def test_governor_saves_mapper_invocations(self):
        workload = overloaded_workload()
        plain_manager = make_manager()
        make_engine(plain_manager, park_rejections=True).run(workload)
        governed_manager = make_manager()
        governed = make_engine(
            governed_manager,
            governor=LoadSheddingGovernor(FAST),
            park_rejections=True,
        ).run(workload)
        assert governed.shed
        assert (
            governed_manager.pipeline.mapper_invocations
            < plain_manager.pipeline.mapper_invocations
        )

    def test_defer_mode_leaves_no_shed_records(self):
        workload = overloaded_workload()
        manager = make_manager()
        governor = LoadSheddingGovernor(
            GovernorConfig(rate_floor=0.5, window=8, min_samples=4, mode="defer")
        )
        outcome = make_engine(manager, governor=governor, park_rejections=True).run(
            workload
        )
        # Defer mode never sheds mid-run (no terminal settlements before
        # the deadline or the end of the workload)...
        assert governor.shed_count == 0
        assert governor.deferred_count > 0
        # ...but deferred arrivals that never reached the mapper settle as
        # SHED at the end-of-run flush instead of being charged as
        # pipeline rejections.
        for record in outcome.records:
            if record.status is RequestStatus.SHED:
                assert "deferred until workload end" in record.reason
        # Every submitted request still settled exactly once by run end.
        assert len(outcome.records) == len(
            [e for e in workload.sorted_events() if isinstance(e, StartEvent)]
        )


class TestDeferredExpiryObservation:
    def test_expiry_of_governor_deferred_request_is_not_observed(self):
        # A request the governor deferred and that expires before ever
        # reaching the mapper must not feed the rate window: the failure is
        # the governor's own doing, and counting it would keep the window
        # depressed forever (a self-reinforcing shedding loop).
        manager = make_manager()
        governor = LoadSheddingGovernor(FAST)
        engine = make_engine(manager, governor=governor)
        app = make_app(900, "deferred", "io_l")
        engine.queue.submit(app.als, library=app.library, deadline_ns=10.0)
        _, taken = engine.queue.take(now_ns=0.0)
        assert engine.queue.defer(taken, now_ns=0.0) == []
        assert taken[0].deferred_by_governor
        samples_before = governor.snapshot()["samples"]
        outcome = EngineOutcome(workload="expiry")
        engine._drain(100.0, outcome)  # past the deadline: expiry sweep
        assert [r.status for r in outcome.records] == [RequestStatus.EXPIRED]
        assert governor.snapshot()["samples"] == samples_before


class TestShedCancelRaces:
    ROUNDS = 60

    def _race(self, queue, request, settle):
        """Race ``settle(request)`` against a concurrent client cancel."""
        barrier = threading.Barrier(2)
        results = {}

        def cancel_side():
            barrier.wait()
            results["cancelled"] = queue.cancel(request.ticket, now_ns=2.0)

        def settle_side():
            barrier.wait()
            settle(request)

        threads = [
            threading.Thread(target=cancel_side),
            threading.Thread(target=settle_side),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return results["cancelled"]

    def test_shed_vs_cancel_settles_exactly_once(self):
        manager = make_manager()
        queue = AdmissionQueue(manager)
        outcomes = set()
        for round_index in range(self.ROUNDS):
            app = make_app(1000 + round_index, f"race{round_index}", "io_l")
            queue.submit(app.als, library=app.library)
            _, (request,) = queue.take()
            assert request.status is RequestStatus.IN_FLIGHT
            cancelled = self._race(
                queue, request, lambda r: queue.shed(r, now_ns=1.0)
            )
            # Exactly one terminal settlement: CANCELLED xor SHED.
            assert request.status in (RequestStatus.CANCELLED, RequestStatus.SHED)
            if cancelled:
                # A successful synchronous cancel is impossible here: the
                # request was IN_FLIGHT when both sides started.
                pytest.fail("cancel() claimed a synchronous win on an in-flight request")
            if request.status is RequestStatus.SHED:
                assert not request.cancel_requested or request.decided_ns == 1.0
            assert request not in queue.pending
            outcomes.add(request.status)
        assert RequestStatus.SHED in outcomes  # the race is actually exercised

    def test_defer_vs_cancel_settles_exactly_once(self):
        manager = make_manager()
        queue = AdmissionQueue(manager)
        saw_cancel = saw_pending = False
        for round_index in range(self.ROUNDS):
            app = make_app(2000 + round_index, f"defer{round_index}", "io_l")
            queue.submit(app.als, library=app.library)
            _, (request,) = queue.take()
            self._race(queue, request, lambda r: queue.defer([r], now_ns=1.0))
            assert request.status in (RequestStatus.CANCELLED, RequestStatus.PENDING)
            if request.status is RequestStatus.CANCELLED:
                saw_cancel = True
                assert request not in queue.pending
                # A later defer of an already-settled request must be a no-op.
                assert queue.defer([request], now_ns=3.0) == []
                assert request.decided_ns != 3.0
            else:
                saw_pending = True
                # Back in the queue; the pending cancel intent (if the
                # cancel lost the race to the defer) settles it on the next
                # claim/finalise cycle, still exactly once.
                _, taken = queue.take()
                assert request in taken
                settled = queue.defer([request], now_ns=4.0)
                if request.cancel_requested:
                    assert settled == [request]
                    assert request.status is RequestStatus.CANCELLED
                else:
                    cancelled_now = queue.cancel(request.ticket, now_ns=5.0)
                    assert cancelled_now
                    assert request.status is RequestStatus.CANCELLED
            assert request.status is not RequestStatus.IN_FLIGHT
        assert saw_cancel or saw_pending


class TestEngineGovernorParameter:
    def test_engine_without_governor_has_no_snapshot(self):
        manager = make_manager()
        app = make_app(1, "solo", "io_l")
        scenario = Scenario("solo", duration_ns=1 * MILLISECOND).add(
            StartEvent(time_ns=0.0, als=app.als, library=app.library)
        )
        outcome = WorkloadEngine(manager).run(scenario)
        assert outcome.telemetry.governor is None
        assert outcome.shed == []
