"""CSDF actors, edges, graphs and the builder."""

import pytest

from repro.csdf.actor import CSDFActor
from repro.csdf.builder import CSDFBuilder
from repro.csdf.edge import CSDFEdge
from repro.csdf.graph import CSDFGraph
from repro.csdf.phase import PhaseVector
from repro.exceptions import CSDFError


class TestActor:
    def test_phases_from_execution_times(self):
        actor = CSDFActor("a", PhaseVector([1.0, 2.0, 3.0]))
        assert actor.phases == 3
        assert actor.total_execution_time_ns() == 6.0

    def test_execution_time_is_cyclic(self):
        actor = CSDFActor("a", PhaseVector([1.0, 2.0]))
        assert actor.execution_time_ns(0) == 1.0
        assert actor.execution_time_ns(3) == 2.0

    def test_sequences_are_coerced_to_phase_vectors(self):
        actor = CSDFActor("a", [1.0, 2.0])
        assert isinstance(actor.execution_times_ns, PhaseVector)

    def test_wcet_phase_count_must_match(self):
        with pytest.raises(CSDFError):
            CSDFActor("a", PhaseVector([1.0, 2.0]), wcet_cycles=PhaseVector([1.0]))

    def test_empty_name_rejected(self):
        with pytest.raises(CSDFError):
            CSDFActor("", PhaseVector([1.0]))

    def test_negative_frequency_rejected(self):
        with pytest.raises(CSDFError):
            CSDFActor("a", PhaseVector([1.0]), frequency_hz=-1)


class TestEdge:
    def test_totals(self):
        edge = CSDFEdge("e", "a", "b", PhaseVector([2, 0]), PhaseVector([1]))
        assert edge.total_production == 2
        assert edge.total_consumption == 1

    def test_initial_tokens_cannot_exceed_capacity(self):
        with pytest.raises(CSDFError):
            CSDFEdge("e", "a", "b", PhaseVector([1]), PhaseVector([1]),
                     initial_tokens=5, capacity=2)

    def test_negative_initial_tokens_rejected(self):
        with pytest.raises(CSDFError):
            CSDFEdge("e", "a", "b", PhaseVector([1]), PhaseVector([1]), initial_tokens=-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(CSDFError):
            CSDFEdge("e", "a", "b", PhaseVector([1]), PhaseVector([1]), capacity=0)

    def test_all_zero_rates_rejected(self):
        with pytest.raises(CSDFError):
            CSDFEdge("e", "a", "b", PhaseVector([0]), PhaseVector([0, 0]))

    def test_with_capacity_returns_copy(self):
        edge = CSDFEdge("e", "a", "b", PhaseVector([1]), PhaseVector([1]))
        bounded = edge.with_capacity(4)
        assert bounded.capacity == 4
        assert edge.capacity is None
        assert bounded.name == edge.name

    def test_self_loop_detection(self):
        edge = CSDFEdge("e", "a", "a", PhaseVector([1]), PhaseVector([1]), initial_tokens=1)
        assert edge.is_self_loop()


class TestGraph:
    def test_duplicate_actor_rejected(self):
        graph = CSDFGraph("g")
        graph.add_actor(CSDFActor("a", PhaseVector([1.0])))
        with pytest.raises(CSDFError):
            graph.add_actor(CSDFActor("a", PhaseVector([1.0])))

    def test_edge_requires_existing_actors(self):
        graph = CSDFGraph("g")
        graph.add_actor(CSDFActor("a", PhaseVector([1.0])))
        with pytest.raises(CSDFError):
            graph.add_edge(CSDFEdge("e", "a", "missing", PhaseVector([1]), PhaseVector([1])))

    def test_rate_vector_length_checked_against_actor_phases(self):
        graph = CSDFGraph("g")
        graph.add_actor(CSDFActor("a", PhaseVector([1.0, 1.0])))
        graph.add_actor(CSDFActor("b", PhaseVector([1.0])))
        with pytest.raises(CSDFError):
            graph.add_edge(
                CSDFEdge("e", "a", "b", PhaseVector([1, 1, 1]), PhaseVector([1]))
            )

    def test_single_phase_rate_is_expanded_to_actor_phases(self):
        graph = CSDFGraph("g")
        graph.add_actor(CSDFActor("a", PhaseVector([1.0, 1.0])))
        graph.add_actor(CSDFActor("b", PhaseVector([1.0])))
        graph.add_edge(CSDFEdge("e", "a", "b", PhaseVector([1]), PhaseVector([2])))
        # The constant-rate shorthand means "1 token in every phase of a".
        assert graph.edge("e").production_rates == (1, 1)
        assert graph.edge("e").total_production == 2

    def test_input_output_edges(self, simple_chain_csdf):
        assert [e.name for e in simple_chain_csdf.input_edges("b")] == ["e1_a_b"]
        assert [e.name for e in simple_chain_csdf.output_edges("b")] == ["e2_b_c"]

    def test_sources_and_sinks(self, simple_chain_csdf):
        assert [a.name for a in simple_chain_csdf.sources()] == ["a"]
        assert [a.name for a in simple_chain_csdf.sinks()] == ["c"]

    def test_replace_edge_keeps_endpoints(self, simple_chain_csdf):
        edge = simple_chain_csdf.edge("e1_a_b")
        simple_chain_csdf.replace_edge(edge.with_capacity(3))
        assert simple_chain_csdf.edge("e1_a_b").capacity == 3

    def test_replace_edge_rejects_different_endpoints(self, simple_chain_csdf):
        foreign = CSDFEdge("e1_a_b", "b", "c", PhaseVector([1]), PhaseVector([1]))
        with pytest.raises(CSDFError):
            simple_chain_csdf.replace_edge(foreign)

    def test_copy_is_structural(self, simple_chain_csdf):
        clone = simple_chain_csdf.copy("clone")
        assert clone.name == "clone"
        assert clone.actor_names == simple_chain_csdf.actor_names
        assert len(clone.edges) == len(simple_chain_csdf.edges)

    def test_actors_with_role(self):
        graph = CSDFGraph("g")
        graph.add_actor(CSDFActor("r", PhaseVector([1.0]), role="router"))
        graph.add_actor(CSDFActor("p", PhaseVector([1.0]), role="process"))
        assert [a.name for a in graph.actors_with_role("router")] == ["r"]


class TestBuilder:
    def test_builder_produces_graph(self, simple_chain_csdf):
        assert len(simple_chain_csdf) == 3
        assert len(simple_chain_csdf.edges) == 2

    def test_actor_from_cycles_converts_to_time(self):
        graph = (
            CSDFBuilder("g")
            .actor_from_cycles("a", [4, 4], frequency_hz=100e6)
            .build()
        )
        assert graph.actor("a").execution_times_ns == (40.0, 40.0)
        assert graph.actor("a").wcet_cycles == (4, 4)

    def test_explicit_edge_names(self):
        graph = (
            CSDFBuilder("g")
            .actor("a", [1.0])
            .actor("b", [1.0])
            .edge("a", "b", name="myedge")
            .build()
        )
        assert graph.edge("myedge").target == "b"
