"""Throughput, buffer-sizing and latency analyses."""

import pytest

from repro.csdf.analysis.buffers import (
    apply_buffer_capacities,
    minimize_buffer_capacities,
    sufficient_buffer_capacities,
)
from repro.csdf.analysis.latency import end_to_end_latency_ns
from repro.csdf.analysis.throughput import (
    is_period_sustainable,
    minimal_period_ns,
    processor_bound_period_ns,
)
from repro.csdf.builder import CSDFBuilder
from repro.exceptions import CSDFError, DeadlockError


class TestThroughput:
    def test_processor_bound_of_chain(self, simple_chain_csdf):
        assert processor_bound_period_ns(simple_chain_csdf) == pytest.approx(20.0)

    def test_processor_bound_counts_repetitions(self, multirate_csdf):
        # c fires 3 times per iteration at 6 ns each -> 18 ns dominates.
        assert processor_bound_period_ns(multirate_csdf) == pytest.approx(18.0)

    def test_minimal_period_at_least_processor_bound(self, multirate_csdf):
        minimal = minimal_period_ns(multirate_csdf, iterations=10)
        assert minimal >= processor_bound_period_ns(multirate_csdf) - 1e-9

    def test_minimal_period_of_deadlocked_graph_raises(self):
        graph = (
            CSDFBuilder("deadlock")
            .actor("a", [1.0])
            .actor("b", [1.0])
            .edge("a", "b", production=[1], consumption=[1])
            .edge("b", "a", production=[1], consumption=[1])
            .build()
        )
        with pytest.raises(DeadlockError):
            minimal_period_ns(graph)

    def test_sustainable_period(self, simple_chain_csdf):
        assert is_period_sustainable(simple_chain_csdf, 25.0)
        assert is_period_sustainable(simple_chain_csdf, 20.0)

    def test_unsustainable_period(self, simple_chain_csdf):
        assert not is_period_sustainable(simple_chain_csdf, 15.0)

    def test_period_must_be_positive(self, simple_chain_csdf):
        with pytest.raises(ValueError):
            is_period_sustainable(simple_chain_csdf, 0.0)

    def test_warmup_transient_does_not_mask_backlog(self):
        # Initial tokens let the middle stages start immediately, so the
        # pipeline settles to a much lower ideal-shifted finish (2 ns) than
        # iteration 0's (14 ns).  With iteration 0 as the latency reference
        # the 12 ns spread was invisible (every later finish beats it); the
        # criterion must measure the spread against the *earliest* shifted
        # finish and reject the period.
        graph = (
            CSDFBuilder("warmup_transient")
            .actor("a0", [2.0])
            .actor("a1", [6.0])
            .actor("a2", [8.0])
            .actor("a3", [9.0])
            .actor("a4", [6.0])
            .edge("a0", "a1", production=[1], consumption=[1], initial_tokens=3)
            .edge("a1", "a2", production=[1], consumption=[1])
            .edge("a2", "a3", production=[1], consumption=[1], initial_tokens=2)
            .edge("a3", "a4", production=[1], consumption=[1], initial_tokens=2)
            .build()
        )
        assert not is_period_sustainable(graph, 10.0, iterations=8)
        assert not is_period_sustainable(graph, 10.0, iterations=8, early_exit=True)
        # A period generous enough to absorb the transient is accepted.
        assert is_period_sustainable(graph, 13.0, iterations=8)
        assert is_period_sustainable(graph, 13.0, iterations=8, early_exit=True)


class TestBufferSizing:
    def test_sufficient_capacities_sustain_period(self, simple_chain_csdf):
        capacities = sufficient_buffer_capacities(simple_chain_csdf, period_ns=20.0)
        bounded = apply_buffer_capacities(simple_chain_csdf, capacities)
        assert is_period_sustainable(bounded, 20.0)

    def test_capacities_at_least_max_rate(self, multirate_csdf):
        capacities = sufficient_buffer_capacities(multirate_csdf, period_ns=None)
        for edge in multirate_csdf.edges:
            assert capacities[edge.name] >= max(
                edge.production_rates.max(), edge.consumption_rates.max()
            )

    def test_minimized_capacities_not_larger_than_sufficient(self, simple_chain_csdf):
        sufficient = sufficient_buffer_capacities(simple_chain_csdf, period_ns=25.0)
        minimal = minimize_buffer_capacities(simple_chain_csdf, period_ns=25.0)
        for edge_name, capacity in minimal.items():
            assert capacity <= sufficient[edge_name]

    def test_minimized_capacities_still_sustain_period(self, simple_chain_csdf):
        minimal = minimize_buffer_capacities(simple_chain_csdf, period_ns=25.0)
        bounded = apply_buffer_capacities(simple_chain_csdf, minimal)
        assert is_period_sustainable(bounded, 25.0)

    def test_slower_period_never_needs_bigger_buffers(self, multirate_csdf):
        fast = sufficient_buffer_capacities(multirate_csdf, period_ns=18.0)
        slow = sufficient_buffer_capacities(multirate_csdf, period_ns=100.0)
        for edge_name in fast:
            assert slow[edge_name] <= fast[edge_name]

    def test_apply_capacities_returns_new_graph(self, simple_chain_csdf):
        capacities = {e.name: 5 for e in simple_chain_csdf.edges}
        bounded = apply_buffer_capacities(simple_chain_csdf, capacities)
        assert all(e.capacity == 5 for e in bounded.edges)
        assert all(e.capacity is None for e in simple_chain_csdf.edges)


class TestLatency:
    def test_latency_of_chain(self, simple_chain_csdf):
        latency = end_to_end_latency_ns(simple_chain_csdf, "a", "c", iterations=4)
        assert latency >= 35.0  # at least the sum of one firing per stage

    def test_defaults_to_unique_source_and_sink(self, simple_chain_csdf):
        assert end_to_end_latency_ns(simple_chain_csdf, iterations=3) > 0

    def test_ambiguous_endpoints_rejected(self):
        graph = (
            CSDFBuilder("fork")
            .actor("src", [1.0])
            .actor("a", [1.0])
            .actor("b", [1.0])
            .edge("src", "a")
            .edge("src", "b")
            .build()
        )
        with pytest.raises(CSDFError):
            end_to_end_latency_ns(graph)

    def test_periodic_source_latency_not_smaller_than_self_timed(self, simple_chain_csdf):
        self_timed = end_to_end_latency_ns(simple_chain_csdf, "a", "c", iterations=4)
        periodic = end_to_end_latency_ns(
            simple_chain_csdf, "a", "c", iterations=4, source_period_ns=100.0
        )
        assert periodic <= self_timed + 1e-9
