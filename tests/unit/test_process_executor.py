"""The process-parallel region drain: executor lifecycle and fold discipline.

The differential suites pin that :class:`ProcessRegionExecutor` is
decision-identical to the serial reference; these tests pin the edges the
differentials cannot reach — the stale-snapshot re-decide path, worker
error surfacing, the custom-factory refusal, pool lifecycle, and the
ownership guard's enriched violation diagnostics.
"""

import threading

import pytest

from repro.exceptions import PlatformError
from repro.platform.regions import (
    RegionLocks,
    RegionOwnershipGuard,
    current_worker_name,
)
from repro.runtime import procdrain
from repro.runtime.engine import ProcessRegionExecutor, WorkloadEngine, _RegionJob
from repro.runtime.events import StartEvent
from repro.runtime.queue import AdmissionQueue
from repro.runtime.scenario import Scenario
from tests.harness import build_two_region_platform, make_app, make_manager


@pytest.fixture()
def platform():
    return build_two_region_platform()


@pytest.fixture()
def manager(platform):
    return make_manager(platform)


def _region_job(manager, seed: int, name: str, io_tile: str = "io_l") -> _RegionJob:
    """A claimed phase-1 job for one synthetic request, via the real queue."""
    queue = AdmissionQueue(manager)
    app = make_app(seed, name, io_tile)
    queue.submit(app.als, library=app.library)
    _, ready = queue.take()
    request = ready[0]
    region = manager.partition.region(request.lane)
    return _RegionJob(request, region)


def _scenario(apps) -> Scenario:
    scenario = Scenario("procdrain-unit", duration_ns=4_000_000.0)
    for index, app in enumerate(apps):
        scenario.add(
            StartEvent(time_ns=float(index) * 1_000.0, als=app.als, library=app.library)
        )
    return scenario


class TestFoldDiscipline:
    def test_stale_snapshot_is_redecided_never_committed(self, manager):
        """A response whose base fingerprint mismatches must be re-decided on
        the engine process; its shipped delta must never be folded."""
        executor = ProcessRegionExecutor(manager.partition, workers=1)
        pipeline = manager.pipeline
        job = _region_job(manager, 200, "victim")
        # A delta for an application that never went through the pipeline:
        # were the stale response folded, 'phantom' would appear in state.
        from repro.platform.state import AllocationDelta, ProcessAllocation

        tile = job.region.processing_tile_names()[0]
        phantom = AllocationDelta(
            "phantom", (ProcessAllocation("phantom", "p0", tile),), ()
        )
        response = procdrain.JobResponse(
            ticket=job.request.ticket,
            base_fingerprint=("definitely", "stale"),
            decision_blob=procdrain.dump_frame(None),
            delta_blob=procdrain.dump_frame(phantom),
            mapper_invocations=1,
            wall_s=0.5,
        )
        stats = executor._stats_for("region-drain-0")
        executor._fold_lane(
            job.region.name,
            [job],
            procdrain.LaneResult(job.region.name, (response,)),
            pipeline,
            stats,
        )
        assert stats["stale_redecides"] == 1
        assert job.error is None
        assert job.decision is not None and job.decision.admitted
        assert job.decision.application == "victim"
        assert "phantom" not in pipeline.state.applications()
        executor.close()

    def test_conflicting_delta_triggers_engine_redecide(self, manager):
        """A matching fingerprint whose delta no longer fits re-decides too
        (the transaction rolls the partial fold back first)."""
        executor = ProcessRegionExecutor(manager.partition, workers=1)
        pipeline = manager.pipeline
        job = _region_job(manager, 201, "squeezed")
        from repro.platform.state import AllocationDelta, ProcessAllocation

        tile = job.region.processing_tile_names()[0]
        capacity = manager.platform.tile(tile).resources.max_processes
        overflow = AllocationDelta(
            "overflow",
            tuple(
                ProcessAllocation("overflow", f"p{i}", tile)
                for i in range(capacity + 1)
            ),
            (),
        )
        admitted = procdrain.dump_frame(
            pipeline.decide(job.request.als, job.request.library, candidates=(job.region,))
            .as_transport()
        )
        # Undo that probe decision's commit so the engine state is clean.
        pipeline.release("squeezed")
        pipeline.forget("squeezed")
        response = procdrain.JobResponse(
            ticket=job.request.ticket,
            base_fingerprint=job.region.fingerprint(pipeline.state),
            decision_blob=admitted,
            delta_blob=procdrain.dump_frame(overflow),
            mapper_invocations=0,
            wall_s=0.0,
        )
        stats = executor._stats_for("region-drain-0")
        executor._fold_lane(
            job.region.name,
            [job],
            procdrain.LaneResult(job.region.name, (response,)),
            pipeline,
            stats,
        )
        assert stats["stale_redecides"] == 1
        assert job.decision is not None and job.decision.admitted
        assert "overflow" not in pipeline.state.applications()
        executor.close()

    def test_worker_error_surfaces_as_platform_error(self, manager):
        executor = ProcessRegionExecutor(manager.partition, workers=1)
        job = _region_job(manager, 202, "doomed")
        response = procdrain.JobResponse(
            ticket=job.request.ticket,
            base_fingerprint=job.region.fingerprint(manager.pipeline.state),
            decision_blob=None,
            delta_blob=None,
            mapper_invocations=0,
            wall_s=0.0,
            error="Traceback: synthetic worker explosion",
        )
        executor._fold_lane(
            job.region.name,
            [job],
            procdrain.LaneResult(job.region.name, (response,)),
            manager.pipeline,
            executor._stats_for("region-drain-0"),
        )
        assert isinstance(job.error, PlatformError)
        assert "synthetic worker explosion" in str(job.error)
        assert job.decision is None
        executor.close()

    def test_lane_abort_leaves_later_jobs_undecided(self, manager):
        """Jobs after a worker-aborted one get no decision (the engine
        requeues them), mirroring the serial lane-abort discipline."""
        executor = ProcessRegionExecutor(manager.partition, workers=1)
        first = _region_job(manager, 203, "first")
        second = _region_job(manager, 204, "second")
        response = procdrain.JobResponse(
            ticket=first.request.ticket,
            base_fingerprint=first.region.fingerprint(manager.pipeline.state),
            decision_blob=None,
            delta_blob=None,
            mapper_invocations=0,
            wall_s=0.0,
            error="boom",
        )
        executor._fold_lane(
            first.region.name,
            [first, second],
            procdrain.LaneResult(first.region.name, (response,)),
            manager.pipeline,
            executor._stats_for("region-drain-0"),
        )
        assert first.error is not None
        assert second.decision is None and second.error is None
        executor.close()


class TestExecutorLifecycle:
    def test_custom_mapper_factory_is_refused(self, platform):
        from repro.spatialmapper.mapper import SpatialMapper

        manager = make_manager(
            platform,
            mapper_factory=lambda p, lib, cfg: SpatialMapper(p, lib, cfg),
        )
        executor = ProcessRegionExecutor(manager.partition, workers=1)
        job = _region_job(manager, 210, "refused")
        with pytest.raises(PlatformError, match="default mapper factory"):
            executor.execute({job.region.name: [job]}, manager.pipeline)
        executor.close()

    def test_close_is_idempotent_and_pool_restarts(self, manager):
        executor = ProcessRegionExecutor(manager.partition, workers=1)
        engine = WorkloadEngine(manager, executor=executor)
        apps = [make_app(220 + i, f"cycle{i}", "io_l") for i in range(2)]
        outcome = engine.run(_scenario(apps))
        assert outcome.admitted == ["cycle0", "cycle1"]
        pool = executor._pool
        assert pool is not None and all(w.process.is_alive() for w in pool)
        executor.close()
        executor.close()  # idempotent
        assert executor._pool is None
        for worker in pool:
            assert not worker.process.is_alive()
        # Reuse after close starts a fresh pool transparently.
        for app in apps:
            manager.stop(app.als.name)
        again = engine.run(_scenario(apps))
        assert again.admitted == ["cycle0", "cycle1"]
        executor.close()

    def test_worker_count_defaults_are_bounded(self, manager):
        import os

        executor = ProcessRegionExecutor(manager.partition)
        assert 1 <= executor.workers <= max(
            1, min(len(manager.partition), os.cpu_count() or 1)
        )
        floor = ProcessRegionExecutor(manager.partition, workers=0)
        assert floor.workers == 1

    def test_engine_telemetry_reports_worker_stats(self, manager):
        executor = ProcessRegionExecutor(manager.partition, workers=2)
        engine = WorkloadEngine(manager, executor=executor)
        apps = [make_app(230 + i, f"tele{i}", tile) for i, tile in enumerate(["io_l", "io_r"])]
        outcome = engine.run(_scenario(apps))
        assert outcome.admitted == ["tele0", "tele1"]
        workers = outcome.telemetry.workers
        assert workers, "process executor runs must report per-worker stats"
        total = {
            key: sum(values[key] for values in workers.values())
            for key in next(iter(workers.values()))
        }
        assert total["requests"] == 2
        assert total["dispatches"] >= 2
        assert total["snapshot_bytes"] > 0
        assert total["delta_bytes"] > 0
        assert total["stale_redecides"] == 0
        assert total["worker_wall_s"] > 0
        # A second run reports only its own delta, not the pool's lifetime.
        for app in apps:
            manager.stop(app.als.name)
        second = engine.run(_scenario(apps))
        assert second.telemetry.workers["region-drain-0"]["requests"] <= 2
        executor.close()


class TestGuardDiagnostics:
    def test_violation_names_worker_and_unheld_lock(self, manager):
        locks = RegionLocks(manager.partition)
        guard = RegionOwnershipGuard(manager.partition, locks)
        manager.state.ownership_guard = guard
        app = make_app(240, "diagnosed", "io_l")
        try:
            with pytest.raises(PlatformError) as excinfo:
                manager.start(app.als, library=app.library)
        finally:
            manager.state.ownership_guard = None
        message = str(excinfo.value)
        assert "does not hold its lock" in message
        assert current_worker_name() in message
        assert "currently unheld" in message

    def test_violation_names_the_actual_holder(self, manager):
        locks = RegionLocks(manager.partition)
        guard = RegionOwnershipGuard(manager.partition, locks)
        manager.state.ownership_guard = guard
        app = make_app(241, "contested", "io_l")
        errors: list[PlatformError] = []

        def foreign_start():
            try:
                manager.start(app.als, library=app.library)
            except PlatformError as error:
                errors.append(error)

        holder_label = current_worker_name()
        try:
            with locks.global_lane():
                thread = threading.Thread(
                    target=foreign_start, name="imposter-thread"
                )
                thread.start()
                thread.join()
        finally:
            manager.state.ownership_guard = None
        assert errors
        message = str(errors[0])
        assert "held by" in message
        assert holder_label in message
        assert "imposter-thread" in message  # the mutating worker's own name
