"""The process-parallel region drain: executor lifecycle and fold discipline.

The differential suites pin that :class:`ProcessRegionExecutor` is
decision-identical to the serial reference; these tests pin the edges the
differentials cannot reach — the stale-snapshot re-decide path, worker
error surfacing, the custom-factory refusal, pool lifecycle, and the
ownership guard's enriched violation diagnostics.
"""

import threading

import pytest

from repro.exceptions import PlatformError
from repro.platform.regions import (
    RegionLocks,
    RegionOwnershipGuard,
    current_worker_name,
)
from repro.platform.state import fingerprint_digest
from repro.runtime import procdrain
from repro.runtime.engine import (
    ProcessRegionExecutor,
    SerialRegionExecutor,
    WorkloadEngine,
    _RegionJob,
)
from repro.runtime.events import StartEvent
from repro.runtime.queue import AdmissionQueue
from repro.runtime.scenario import Scenario
from tests.harness import build_two_region_platform, make_app, make_manager


@pytest.fixture()
def platform():
    return build_two_region_platform()


@pytest.fixture()
def manager(platform):
    return make_manager(platform)


def _region_job(manager, seed: int, name: str, io_tile: str = "io_l") -> _RegionJob:
    """A claimed phase-1 job for one synthetic request, via the real queue."""
    queue = AdmissionQueue(manager)
    app = make_app(seed, name, io_tile)
    queue.submit(app.als, library=app.library)
    _, ready = queue.take()
    request = ready[0]
    region = manager.partition.region(request.lane)
    return _RegionJob(request, region)


def _scenario(apps) -> Scenario:
    scenario = Scenario("procdrain-unit", duration_ns=4_000_000.0)
    for index, app in enumerate(apps):
        scenario.add(
            StartEvent(time_ns=float(index) * 1_000.0, als=app.als, library=app.library)
        )
    return scenario


class TestFoldDiscipline:
    def test_stale_snapshot_is_redecided_never_committed(self, manager):
        """A response whose base fingerprint mismatches must be re-decided on
        the engine process; its shipped delta must never be folded."""
        executor = ProcessRegionExecutor(manager.partition, workers=1)
        pipeline = manager.pipeline
        job = _region_job(manager, 200, "victim")
        # A delta for an application that never went through the pipeline:
        # were the stale response folded, 'phantom' would appear in state.
        from repro.platform.state import AllocationDelta, ProcessAllocation

        tile = job.region.processing_tile_names()[0]
        phantom = AllocationDelta(
            "phantom", (ProcessAllocation("phantom", "p0", tile),), ()
        )
        response = procdrain.JobResponse(
            ticket=job.request.ticket,
            base_fingerprint=b"definitely stale",
            decision_blob=procdrain.dump_frame(None),
            delta_blob=procdrain.dump_frame(phantom),
            mapper_invocations=1,
            wall_s=0.5,
        )
        stats = executor._stats_for("region-drain-0")
        executor._fold_lane(
            job.region.name,
            [job],
            procdrain.LaneResult(job.region.name, (response,)),
            pipeline,
            stats,
        )
        assert stats["stale_redecides"] == 1
        assert job.error is None
        assert job.decision is not None and job.decision.admitted
        assert job.decision.application == "victim"
        assert "phantom" not in pipeline.state.applications()
        executor.close()

    def test_conflicting_delta_triggers_engine_redecide(self, manager):
        """A matching fingerprint whose delta no longer fits re-decides too
        (the transaction rolls the partial fold back first)."""
        executor = ProcessRegionExecutor(manager.partition, workers=1)
        pipeline = manager.pipeline
        job = _region_job(manager, 201, "squeezed")
        from repro.platform.state import AllocationDelta, ProcessAllocation

        tile = job.region.processing_tile_names()[0]
        capacity = manager.platform.tile(tile).resources.max_processes
        overflow = AllocationDelta(
            "overflow",
            tuple(
                ProcessAllocation("overflow", f"p{i}", tile)
                for i in range(capacity + 1)
            ),
            (),
        )
        admitted = procdrain.dump_frame(
            pipeline.decide(job.request.als, job.request.library, candidates=(job.region,))
            .as_transport()
        )
        # Undo that probe decision's commit so the engine state is clean.
        pipeline.release("squeezed")
        pipeline.forget("squeezed")
        response = procdrain.JobResponse(
            ticket=job.request.ticket,
            base_fingerprint=fingerprint_digest(job.region.fingerprint(pipeline.state)),
            decision_blob=admitted,
            delta_blob=procdrain.dump_frame(overflow),
            mapper_invocations=0,
            wall_s=0.0,
        )
        stats = executor._stats_for("region-drain-0")
        executor._fold_lane(
            job.region.name,
            [job],
            procdrain.LaneResult(job.region.name, (response,)),
            pipeline,
            stats,
        )
        assert stats["stale_redecides"] == 1
        assert job.decision is not None and job.decision.admitted
        assert "overflow" not in pipeline.state.applications()
        executor.close()

    def test_worker_error_surfaces_as_platform_error(self, manager):
        executor = ProcessRegionExecutor(manager.partition, workers=1)
        job = _region_job(manager, 202, "doomed")
        response = procdrain.JobResponse(
            ticket=job.request.ticket,
            base_fingerprint=fingerprint_digest(job.region.fingerprint(manager.pipeline.state)),
            decision_blob=None,
            delta_blob=None,
            mapper_invocations=0,
            wall_s=0.0,
            error="Traceback: synthetic worker explosion",
        )
        executor._fold_lane(
            job.region.name,
            [job],
            procdrain.LaneResult(job.region.name, (response,)),
            manager.pipeline,
            executor._stats_for("region-drain-0"),
        )
        assert isinstance(job.error, PlatformError)
        assert "synthetic worker explosion" in str(job.error)
        assert job.decision is None
        executor.close()

    def test_lane_abort_leaves_later_jobs_undecided(self, manager):
        """Jobs after a worker-aborted one get no decision (the engine
        requeues them), mirroring the serial lane-abort discipline."""
        executor = ProcessRegionExecutor(manager.partition, workers=1)
        first = _region_job(manager, 203, "first")
        second = _region_job(manager, 204, "second")
        response = procdrain.JobResponse(
            ticket=first.request.ticket,
            base_fingerprint=fingerprint_digest(first.region.fingerprint(manager.pipeline.state)),
            decision_blob=None,
            delta_blob=None,
            mapper_invocations=0,
            wall_s=0.0,
            error="boom",
        )
        executor._fold_lane(
            first.region.name,
            [first, second],
            procdrain.LaneResult(first.region.name, (response,)),
            manager.pipeline,
            executor._stats_for("region-drain-0"),
        )
        assert first.error is not None
        assert second.decision is None and second.error is None
        executor.close()


class TestExecutorLifecycle:
    def test_custom_mapper_factory_is_refused(self, platform):
        from repro.spatialmapper.mapper import SpatialMapper

        manager = make_manager(
            platform,
            mapper_factory=lambda p, lib, cfg: SpatialMapper(p, lib, cfg),
        )
        executor = ProcessRegionExecutor(manager.partition, workers=1)
        job = _region_job(manager, 210, "refused")
        with pytest.raises(PlatformError, match="default mapper factory"):
            executor.execute({job.region.name: [job]}, manager.pipeline)
        executor.close()

    def test_close_is_idempotent_and_pool_restarts(self, manager):
        executor = ProcessRegionExecutor(manager.partition, workers=1)
        engine = WorkloadEngine(manager, executor=executor)
        apps = [make_app(220 + i, f"cycle{i}", "io_l") for i in range(2)]
        outcome = engine.run(_scenario(apps))
        assert outcome.admitted == ["cycle0", "cycle1"]
        pool = executor._pool
        assert pool is not None and all(w.process.is_alive() for w in pool)
        executor.close()
        executor.close()  # idempotent
        assert executor._pool is None
        for worker in pool:
            assert not worker.process.is_alive()
        # Reuse after close starts a fresh pool transparently.
        for app in apps:
            manager.stop(app.als.name)
        again = engine.run(_scenario(apps))
        assert again.admitted == ["cycle0", "cycle1"]
        executor.close()

    def test_worker_count_defaults_are_bounded(self, manager):
        import os

        executor = ProcessRegionExecutor(manager.partition)
        assert 1 <= executor.workers <= max(
            1, min(len(manager.partition), os.cpu_count() or 1)
        )
        floor = ProcessRegionExecutor(manager.partition, workers=0)
        assert floor.workers == 1

    def test_engine_telemetry_reports_worker_stats(self, manager):
        executor = ProcessRegionExecutor(manager.partition, workers=2)
        engine = WorkloadEngine(manager, executor=executor)
        apps = [make_app(230 + i, f"tele{i}", tile) for i, tile in enumerate(["io_l", "io_r"])]
        outcome = engine.run(_scenario(apps))
        assert outcome.admitted == ["tele0", "tele1"]
        workers = outcome.telemetry.workers
        assert workers, "process executor runs must report per-worker stats"
        total = {
            key: sum(values[key] for values in workers.values())
            for key in next(iter(workers.values()))
        }
        assert total["requests"] == 2
        assert total["dispatches"] >= 2
        assert total["snapshot_bytes"] > 0
        assert total["delta_bytes"] > 0
        assert total["stale_redecides"] == 0
        assert total["worker_wall_s"] > 0
        # A second run reports only its own delta, not the pool's lifetime.
        for app in apps:
            manager.stop(app.als.name)
        second = engine.run(_scenario(apps))
        assert second.telemetry.workers["region-drain-0"]["requests"] <= 2
        executor.close()


def _worker_totals(outcome) -> dict[str, float]:
    """Sum the per-run worker telemetry deltas across all workers."""
    workers = outcome.telemetry.workers
    assert workers, "process executor runs must report per-worker stats"
    return {
        key: sum(values[key] for values in workers.values())
        for key in next(iter(workers.values()))
    }


def _fallback_reasons(totals: dict[str, float]) -> float:
    return (
        totals["full_bootstrap"]
        + totals["full_disabled"]
        + totals["full_journal_stale"]
        + totals["full_watermark_gap"]
        + totals["full_resync"]
    )


class TestStatefulDispatch:
    """The snapshot-once / delta-forever protocol, per fallback reason.

    Every test also asserts the zero-silent-fallback invariant: each full
    dispatch is attributed to exactly one counted reason.
    """

    def test_steady_state_ships_deltas_after_the_bootstrap_snapshot(self, manager):
        executor = ProcessRegionExecutor(manager.partition, workers=1)
        engine = WorkloadEngine(manager, executor=executor)
        apps = [
            make_app(250 + i, f"warm{i}", tile)
            for i, tile in enumerate(["io_l", "io_r"])
        ]
        first = engine.run(_scenario(apps))
        assert first.admitted == ["warm0", "warm1"]
        t1 = _worker_totals(first)
        assert t1["full_bootstrap"] >= 1
        assert t1["full_dispatches"] == _fallback_reasons(t1)
        for app in apps:
            manager.stop(app.als.name)
        # Warm pool, journaled releases: the next drain bridges via deltas.
        second = engine.run(_scenario(apps))
        assert second.admitted == ["warm0", "warm1"]
        t2 = _worker_totals(second)
        assert t2["delta_dispatches"] >= 1
        assert t2["full_dispatches"] == 0
        assert t2["full_dispatches"] == _fallback_reasons(t2)
        assert t2["delta_dispatch_bytes"] > 0
        executor.close()

    def test_disabled_mode_ships_full_snapshots_and_counts_them(self, manager):
        executor = ProcessRegionExecutor(
            manager.partition, workers=1, delta_dispatch=False
        )
        engine = WorkloadEngine(manager, executor=executor)
        apps = [make_app(255, "flat0", "io_l")]
        first = engine.run(_scenario(apps))
        manager.stop("flat0")
        second = engine.run(_scenario(apps))
        assert second.admitted == ["flat0"]
        for outcome in (first, second):
            totals = _worker_totals(outcome)
            assert totals["delta_dispatches"] == 0
            assert totals["full_dispatches"] == totals["full_disabled"] >= 1
            assert totals["full_dispatches"] == _fallback_reasons(totals)
        executor.close()

    def test_unjournaled_mutation_falls_back_to_a_counted_full(self, manager):
        """State mutated behind the journal's back (tip fingerprint no longer
        the live region fingerprint) must resnapshot, counted journal_stale."""
        from repro.platform.state import ProcessAllocation

        executor = ProcessRegionExecutor(manager.partition, workers=1)
        engine = WorkloadEngine(manager, executor=executor)
        first = engine.run(_scenario([make_app(260, "stale0", "io_l")]))
        assert first.admitted == ["stale0"]
        manager.stop("stale0")
        region = next(r for r in manager.partition if "io_l" in r.tile_names)
        ghost_tile = region.processing_tile_names()[0]
        manager.state.allocate_process(
            ProcessAllocation("ghost", "ghost0", ghost_tile)
        )
        second = engine.run(_scenario([make_app(261, "stale1", "io_l")]))
        assert second.admitted == ["stale1"]
        t2 = _worker_totals(second)
        assert t2["full_journal_stale"] >= 1
        assert t2["full_dispatches"] == _fallback_reasons(t2)
        executor.close()

    def test_worker_restart_resyncs_with_a_counted_full(self, manager):
        """Watermarks that outlive the worker's resident state (manual pool
        teardown here; a crashed lane in production) are detected by the
        worker's resync answer and repaired with a counted full dispatch."""
        executor = ProcessRegionExecutor(manager.partition, workers=1)
        engine = WorkloadEngine(manager, executor=executor)
        first = engine.run(_scenario([make_app(270, "sync0", "io_l")]))
        assert first.admitted == ["sync0"]
        assert executor._watermarks
        # Kill the pool but keep the watermarks: the next drain attempts a
        # delta against workers whose resident state died with them.
        for worker in executor._pool:
            worker.stop()
        executor._pool = None
        manager.stop("sync0")
        second = engine.run(_scenario([make_app(271, "sync1", "io_l")]))
        assert second.admitted == ["sync1"]
        t2 = _worker_totals(second)
        assert t2["delta_dispatches"] >= 1  # the refused attempt is visible
        assert t2["full_resync"] >= 1
        assert t2["full_dispatches"] == _fallback_reasons(t2)
        executor.close()

    def test_spawn_start_method_is_decision_identical_to_serial(self, platform):
        """The worker protocol must not lean on fork-inherited state: a
        spawn-started pool re-derives everything from the settings frame."""
        serial_manager = make_manager(platform)
        apps = [
            make_app(280 + i, f"spawned{i}", tile)
            for i, tile in enumerate(["io_l", "io_r"])
        ]
        serial = WorkloadEngine(serial_manager, executor=SerialRegionExecutor()).run(
            _scenario(apps)
        )
        spawn_manager = make_manager(build_two_region_platform())
        executor = ProcessRegionExecutor(
            spawn_manager.partition, workers=1, start_method="spawn"
        )
        assert executor.start_method == "spawn"
        try:
            spawned = WorkloadEngine(spawn_manager, executor=executor).run(
                _scenario(apps)
            )
        finally:
            executor.close()
        assert serial.decision_log() == spawned.decision_log()
        assert serial_manager.decisions == spawn_manager.decisions
        assert sorted(serial_manager.state.occupied_tiles()) == sorted(
            spawn_manager.state.occupied_tiles()
        )


class TestGuardDiagnostics:
    def test_violation_names_worker_and_unheld_lock(self, manager):
        locks = RegionLocks(manager.partition)
        guard = RegionOwnershipGuard(manager.partition, locks)
        manager.state.ownership_guard = guard
        app = make_app(240, "diagnosed", "io_l")
        try:
            with pytest.raises(PlatformError) as excinfo:
                manager.start(app.als, library=app.library)
        finally:
            manager.state.ownership_guard = None
        message = str(excinfo.value)
        assert "does not hold its lock" in message
        assert current_worker_name() in message
        assert "currently unheld" in message

    def test_violation_names_the_actual_holder(self, manager):
        locks = RegionLocks(manager.partition)
        guard = RegionOwnershipGuard(manager.partition, locks)
        manager.state.ownership_guard = guard
        app = make_app(241, "contested", "io_l")
        errors: list[PlatformError] = []

        def foreign_start():
            try:
                manager.start(app.als, library=app.library)
            except PlatformError as error:
                errors.append(error)

        holder_label = current_worker_name()
        try:
            with locks.global_lane():
                thread = threading.Thread(
                    target=foreign_start, name="imposter-thread"
                )
                thread.start()
                thread.join()
        finally:
            manager.state.ownership_guard = None
        assert errors
        message = str(errors[0])
        assert "held by" in message
        assert holder_label in message
        assert "imposter-thread" in message  # the mutating worker's own name
