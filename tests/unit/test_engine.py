"""The discrete-event workload engine and its region executors."""

import threading

import pytest

from repro.exceptions import PlatformError
from repro.platform.regions import RegionLocks, RegionOwnershipGuard
from repro.runtime.engine import (
    SerialRegionExecutor,
    ThreadedRegionExecutor,
    WorkloadEngine,
)
from repro.runtime.events import ScenarioEvent, StartEvent, StopEvent
from repro.runtime.queue import RequestStatus
from repro.runtime.scenario import Scenario
from tests.harness import build_two_region_platform, make_app, make_manager


@pytest.fixture()
def platform():
    return build_two_region_platform()


@pytest.fixture()
def manager(platform):
    return make_manager(platform)


class TestEventLoop:
    def test_arrivals_admit_and_departures_free_resources(self, manager):
        first = make_app(1, "first", "io_l")
        second = make_app(2, "second", "io_l")
        scenario = (
            Scenario("lifecycle", duration_ns=4_000_000.0)
            .add(StartEvent(time_ns=0.0, als=first.als, library=first.library))
            .add(StopEvent(time_ns=1_000_000.0, application="first"))
            .add(StartEvent(time_ns=2_000_000.0, als=second.als, library=second.library))
        )
        outcome = WorkloadEngine(manager).run(scenario)
        assert outcome.admitted == ["first", "second"]
        assert outcome.departures == [(1_000_000.0, "first")]
        assert outcome.admission_rate == 1.0
        assert outcome.energy.total_energy_nj > 0
        assert manager.is_running("second") and not manager.is_running("first")

    def test_same_time_batch_runs_departures_before_arrivals(self, manager):
        # Batched mode treats same-timestamp events as concurrent, with the
        # DES convention that departures free resources before arrivals map.
        filler = [make_app(10 + i, f"filler{i}", "io_l") for i in range(2)]
        replacement = make_app(20, "replacement", "io_l")
        scenario = Scenario("handover", duration_ns=3_000_000.0)
        for app in filler:
            scenario.add(StartEvent(time_ns=0.0, als=app.als, library=app.library))
        scenario.add(StopEvent(time_ns=1_000_000.0, application="filler0"))
        scenario.add(StopEvent(time_ns=1_000_000.0, application="filler1"))
        scenario.add(
            StartEvent(time_ns=1_000_000.0, als=replacement.als, library=replacement.library)
        )
        outcome = WorkloadEngine(manager, drain_mode="batched").run(scenario)
        assert "replacement" in outcome.admitted

    def test_unknown_event_type_raises(self, manager):
        scenario = Scenario("bad").add(ScenarioEvent(time_ns=0.0))
        with pytest.raises(TypeError):
            WorkloadEngine(manager).run(scenario)

    def test_unknown_drain_mode_rejected(self, manager):
        with pytest.raises(ValueError):
            WorkloadEngine(manager, drain_mode="eager")

    def test_deadline_expires_in_engine(self, manager):
        blocker = make_app(30, "blocker", "io_l")
        hopeless = [make_app(31 + i, f"hopeless{i}", "io_l") for i in range(4)]
        scenario = Scenario("deadlines", duration_ns=10_000_000.0)
        scenario.add(StartEvent(time_ns=0.0, als=blocker.als, library=blocker.library))
        for app in hopeless:
            scenario.add(
                StartEvent(
                    time_ns=100.0,
                    als=app.als,
                    library=app.library,
                    deadline_ns=5_000.0,
                )
            )
        # A later event past every deadline forces an expiry sweep.
        scenario.add(StopEvent(time_ns=9_000_000.0, application="blocker"))
        engine = WorkloadEngine(manager, park_rejections=True)
        outcome = engine.run(scenario)
        assert "blocker" in outcome.admitted
        # Whatever was not admitted from the hopeless wave either expired at
        # the sweep or was finalised at the end; nothing is left pending.
        assert len(outcome.records) == 1 + len(hopeless)
        assert len(manager.state.applications()) == len(
            [a for a in manager.running_applications]
        )


class TestTwoPhaseDrain:
    def test_serial_and_threaded_executors_decide_identically(self):
        apps = [
            make_app(40 + index, f"app{index}", "io_l" if index % 2 else "io_r")
            for index in range(8)
        ]
        scenario = Scenario("differential", duration_ns=2_000_000.0)
        for index, app in enumerate(apps):
            scenario.add(
                StartEvent(
                    time_ns=float(index // 4) * 1_000_000.0,
                    als=app.als,
                    library=app.library,
                )
            )

        serial_manager = make_manager(build_two_region_platform())
        serial = WorkloadEngine(serial_manager, executor=SerialRegionExecutor()).run(
            scenario
        )
        threaded_manager = make_manager(build_two_region_platform())
        threaded = WorkloadEngine(
            threaded_manager, executor=ThreadedRegionExecutor(threaded_manager.partition)
        ).run(scenario)

        assert serial.decision_log() == threaded.decision_log()
        assert serial_manager.decisions == threaded_manager.decisions
        assert sorted(serial_manager.state.occupied_tiles()) == sorted(
            threaded_manager.state.occupied_tiles()
        )
        assert serial_manager.state.link_loads() == threaded_manager.state.link_loads()
        assert serial.energy.total_energy_nj == pytest.approx(
            threaded.energy.total_energy_nj
        )

    def test_duplicate_names_in_one_batch_are_serialized(self, manager):
        # Two same-named arrivals in the same batch, pinned to different
        # regions: the parallel phase may own at most one; the other must be
        # rejected as already running, never double-admitted.
        left = make_app(50, "twin", "io_l")
        right = make_app(51, "twin", "io_r")
        scenario = (
            Scenario("twins", duration_ns=1_000_000.0)
            .add(StartEvent(time_ns=0.0, als=left.als, library=left.library))
            .add(StartEvent(time_ns=0.0, als=right.als, library=right.library))
        )
        outcome = WorkloadEngine(
            manager, executor=ThreadedRegionExecutor(manager.partition)
        ).run(scenario)
        assert len(outcome.admitted) == 1
        assert len(outcome.rejected) == 1
        assert outcome.rejected[0][1] == "application is already running"
        assert len(manager.state.applications()) == 1

    def test_worker_error_unwinds_and_requeues(self, manager, monkeypatch):
        good = make_app(60, "good", "io_l")
        exploder = make_app(61, "exploder", "io_r")
        scenario = (
            Scenario("explosive", duration_ns=1_000_000.0)
            .add(StartEvent(time_ns=0.0, als=good.als, library=good.library))
            .add(StartEvent(time_ns=0.0, als=exploder.als, library=exploder.library))
        )
        original_decide = manager.pipeline.decide

        def exploding_decide(als, library=None, *, candidates=None, trace=None):
            if als.name == "exploder":
                raise RuntimeError("mapper exploded")
            return original_decide(als, library, candidates=candidates, trace=trace)

        monkeypatch.setattr(manager.pipeline, "decide", exploding_decide)
        engine = WorkloadEngine(manager)
        with pytest.raises(RuntimeError, match="mapper exploded"):
            engine.run(scenario)
        # The good lane's decision survived; the exploding request is back in
        # the queue for a later drain instead of being stranded in flight.
        assert manager.is_running("good")
        assert [r.application for r in engine.queue.pending] == ["exploder"]
        assert engine.queue.pending[0].status is RequestStatus.PENDING


class TestParkedRetries:
    def test_rejection_parks_until_fingerprint_changes(self, manager, monkeypatch):
        # Fill the left region, then submit one more left-pinned app: it is
        # rejected once, parks, and must not be re-mapped by later drains
        # while the region (and platform) state is unchanged.
        fillers = [make_app(70 + i, f"filler{i}", "io_l") for i in range(3)]
        straggler = make_app(80, "straggler", "io_l")
        scenario = Scenario("parked", duration_ns=10_000_000.0)
        for app in fillers:
            scenario.add(StartEvent(time_ns=0.0, als=app.als, library=app.library))
        scenario.add(
            StartEvent(time_ns=1_000.0, als=straggler.als, library=straggler.library)
        )
        # Idle drains: stop events for an application that never ran force
        # drain ticks without changing any fingerprint.
        for index in range(5):
            scenario.add(StopEvent(time_ns=2_000.0 + index, application="ghost"))

        decide_calls = []
        original_decide = manager.pipeline.decide

        def counting_decide(als, library=None, *, candidates=None, trace=None):
            decide_calls.append(als.name)
            return original_decide(als, library, candidates=candidates, trace=trace)

        monkeypatch.setattr(manager.pipeline, "decide", counting_decide)
        outcome = WorkloadEngine(manager, park_rejections=True).run(scenario)

        straggler_attempts = decide_calls.count("straggler")
        assert outcome.parked_retries_skipped > 0
        # One parked rejection = at most one in-region attempt plus one full
        # fallback pass; idle drains must not add more.
        assert straggler_attempts <= 2
        assert ("straggler", "rejected") in [
            (r.application, r.status.value) for r in outcome.records
        ]

    def test_parked_request_retries_after_departure(self, manager):
        fillers = [make_app(90 + i, f"filler{i}", "io_l") for i in range(3)]
        straggler = make_app(95, "straggler", "io_l")
        scenario = Scenario("retry", duration_ns=10_000_000.0)
        for app in fillers:
            scenario.add(StartEvent(time_ns=0.0, als=app.als, library=app.library))
        scenario.add(
            StartEvent(time_ns=1_000.0, als=straggler.als, library=straggler.library)
        )
        # Departures free the region: the changed fingerprint un-parks the
        # straggler, which is then admitted.
        for index, app in enumerate(fillers):
            scenario.add(
                StopEvent(time_ns=2_000_000.0 + index, application=app.als.name)
            )
        outcome = WorkloadEngine(manager, park_rejections=True).run(scenario)
        assert "straggler" in outcome.admitted


class TestOwnershipGuard:
    def test_mutation_without_lock_raises(self, manager):
        locks = RegionLocks(manager.partition)
        guard = RegionOwnershipGuard(manager.partition, locks)
        manager.state.ownership_guard = guard
        app = make_app(100, "guarded", "io_l")
        try:
            with pytest.raises(PlatformError, match="does not hold its lock"):
                manager.start(app.als, library=app.library)
        finally:
            manager.state.ownership_guard = None

    def test_mutation_under_region_lock_passes(self, manager):
        locks = RegionLocks(manager.partition)
        guard = RegionOwnershipGuard(manager.partition, locks)
        app = make_app(101, "guarded", "io_l")
        manager.state.ownership_guard = guard
        try:
            with locks.global_lane():
                result = manager.start(app.als, library=app.library)
            assert result.is_feasible
        finally:
            manager.state.ownership_guard = None

    def test_region_lock_holder_tracking(self, manager):
        locks = RegionLocks(manager.partition)
        assert not locks.holds("r0_0")
        with locks.region_lane("r0_0"):
            assert locks.holds("r0_0")
            assert not locks.holds_all()
        with locks.global_lane():
            assert locks.holds_all()
        assert not locks.holds("r0_0")
        with pytest.raises(PlatformError):
            with locks.region_lane("nope"):
                pass

    def test_guard_blocks_foreign_thread(self, manager):
        locks = RegionLocks(manager.partition)
        guard = RegionOwnershipGuard(manager.partition, locks)
        manager.state.ownership_guard = guard
        app = make_app(102, "foreign", "io_l")
        errors = []

        def foreign_start():
            try:
                manager.start(app.als, library=app.library)
            except PlatformError as error:
                errors.append(error)

        try:
            with locks.global_lane():
                # The lock is held by *this* thread; a different thread
                # mutating the same keys must be rejected by the guard.
                thread = threading.Thread(target=foreign_start)
                thread.start()
                thread.join()
        finally:
            manager.state.ownership_guard = None
        assert errors, "foreign-thread mutation slipped past the ownership guard"


class TestOutcomeStatusIndex:
    """The lazily built per-status index behind EngineOutcome's accessors."""

    @staticmethod
    def _outcome(count):
        from repro.runtime.engine import EngineOutcome, EngineRecord

        statuses = [
            RequestStatus.ADMITTED,
            RequestStatus.REJECTED,
            RequestStatus.EXPIRED,
            RequestStatus.CANCELLED,
            RequestStatus.SHED,
        ]
        outcome = EngineOutcome(workload="index")
        for ticket in range(count):
            outcome.records.append(
                EngineRecord(
                    time_ns=float(ticket),
                    ticket=ticket,
                    application=f"app{ticket}",
                    status=statuses[ticket % len(statuses)],
                )
            )
        return outcome

    def test_index_matches_linear_scan_at_10k_records(self):
        outcome = self._outcome(10_000)
        for status, accessor in (
            (RequestStatus.ADMITTED, lambda o: o.admitted),
            (RequestStatus.EXPIRED, lambda o: o.expired),
            (RequestStatus.CANCELLED, lambda o: o.cancelled),
            (RequestStatus.SHED, lambda o: o.shed),
        ):
            expected = [r.application for r in outcome.records if r.status is status]
            assert accessor(outcome) == expected
        assert outcome.rejected == [
            (r.application, r.reason)
            for r in outcome.records
            if r.status is RequestStatus.REJECTED
        ]
        assert outcome.decided == 6_000  # admitted + rejected + expired

    def test_index_built_once_and_invalidated_by_append(self):
        from repro.runtime.engine import EngineRecord

        outcome = self._outcome(100)
        assert len(outcome.admitted) == 20
        first_cache = outcome._status_cache
        outcome.rejected, outcome.expired  # further accesses reuse the index
        assert outcome._status_cache is first_cache
        outcome.records.append(
            EngineRecord(
                time_ns=100.0, ticket=100, application="late", status=RequestStatus.ADMITTED
            )
        )
        assert outcome.admitted[-1] == "late"  # append invalidated the index
        assert outcome._status_cache is not first_cache

    def test_accessors_stay_linear_not_quadratic(self):
        # Reporting loops hit every accessor per record; with the index a
        # full sweep over 10k records is ~one scan, without it ~50k scans.
        # Pin behaviour (not wall-clock): count index rebuilds via the
        # cache key.
        outcome = self._outcome(10_000)
        for _ in range(100):
            outcome.admitted
            outcome.rejected
            outcome.shed
        assert outcome._status_cache[0] == 10_000
