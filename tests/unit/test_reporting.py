"""Reporting: tables, renderers and the experiment drivers."""

import pytest

from repro.reporting.render import render_csdf, render_kpn, render_mapping, render_platform
from repro.reporting.tables import format_table
from repro.reporting import experiments
from repro.spatialmapper.mapper import SpatialMapper
from repro.workloads import hiperlan2


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("+")
        assert "| a " in lines[1]
        assert lines[1].count("|") == 3

    def test_title_printed_first(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_right_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["b", 22]], align_right=(1,))
        # The "value" column is five characters wide, so the single digit is
        # padded on the left when right-aligned.
        assert "|     1 |" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestRenderers:
    def test_render_platform_mentions_all_tiles(self, hiperlan_platform):
        text = render_platform(hiperlan_platform)
        for tile in hiperlan_platform.tiles:
            assert tile.name in text

    def test_render_kpn_mentions_processes_and_channels(self, hiperlan_als):
        text = render_kpn(hiperlan_als.kpn)
        assert "prefix_removal" in text
        assert "c_adc_pfx" in text
        assert "[control]" in text

    def test_render_mapping_and_csdf(self, case_study):
        als, platform, library = case_study
        result = SpatialMapper(platform, library).map(als)
        mapping_text = render_mapping(result.mapping, platform)
        assert "inverse_ofdm" in mapping_text
        assert "buffer" in mapping_text.lower()
        csdf_text = render_csdf(result.mapped_csdf, show_rates=True)
        assert "router" in csdf_text
        assert "prod=" in csdf_text


class TestExperimentDrivers:
    def test_figure1_report(self):
        report = experiments.experiment_figure1()
        assert report.experiment == "fig1"
        assert report.data["channel_tokens"]["c_adc_pfx"] == 80
        assert "prefix_removal" in report.text

    def test_table1_report(self):
        report = experiments.experiment_table1()
        assert len(report.data["rows"]) == 8
        assert report.data["energies"][("inverse_ofdm", "MONTIUM")] == 143
        assert "Table 1" in report.text

    def test_figure2_report(self):
        report = experiments.experiment_figure2()
        assert report.data["tile_type_counts"]["ARM"] == 2
        assert report.data["routers"] == 9

    def test_table2_report_matches_paper(self):
        report = experiments.experiment_table2()
        assert report.data["cost_trajectory"] == [11.0, 11.0, 9.0, 7.0]
        assert report.data["final_cost"] == 7.0
        assert "No further choices" in report.text

    def test_figure3_report(self):
        report = experiments.experiment_figure3()
        assert report.data["feasible"]
        assert report.data["router_actor_count"] == 7
        assert set(report.data["buffer_capacities"]) == {
            "c_adc_pfx", "c_pfx_frq", "c_frq_iofdm", "c_iofdm_rem", "c_rem_sink"
        }

    def test_section45_report(self):
        report = experiments.experiment_section45(repetitions=1)
        assert report.data["feasible"]
        assert report.data["runtime_ms_best"] > 0
        assert report.data["peak_memory_kb"] > 0

    def test_all_experiments_returns_six_reports(self):
        reports = experiments.all_experiments()
        assert [r.experiment for r in reports] == [
            "fig1", "tab1", "fig2", "tab2", "fig3", "sec45"
        ]
