"""The KPN graph container."""

import pytest

from repro.exceptions import KPNError
from repro.kpn.channel import Channel
from repro.kpn.graph import KPNGraph
from repro.kpn.process import Process, ProcessKind


@pytest.fixture()
def graph():
    kpn = KPNGraph("app")
    kpn.add_process(Process("src", ProcessKind.SOURCE, pinned_tile="io"))
    kpn.add_process(Process("a"))
    kpn.add_process(Process("b"))
    kpn.add_process(Process("snk", ProcessKind.SINK, pinned_tile="io"))
    kpn.add_process(Process("ctrl", ProcessKind.CONTROL))
    kpn.add_channel(Channel("c0", "src", "a", tokens_per_iteration=8))
    kpn.add_channel(Channel("c1", "a", "b", tokens_per_iteration=4))
    kpn.add_channel(Channel("c2", "b", "snk", tokens_per_iteration=2))
    kpn.add_channel(Channel("cc", "ctrl", "b", is_control=True))
    return kpn


class TestConstruction:
    def test_empty_name_rejected(self):
        with pytest.raises(KPNError):
            KPNGraph("")

    def test_duplicate_process_rejected(self, graph):
        with pytest.raises(KPNError):
            graph.add_process(Process("a"))

    def test_duplicate_channel_rejected(self, graph):
        with pytest.raises(KPNError):
            graph.add_channel(Channel("c0", "a", "b"))

    def test_channel_with_unknown_endpoint_rejected(self, graph):
        with pytest.raises(KPNError):
            graph.add_channel(Channel("cx", "a", "nonexistent"))

    def test_bulk_add(self):
        kpn = KPNGraph("bulk")
        kpn.add_processes([Process("x"), Process("y")])
        kpn.add_channels([Channel("c", "x", "y")])
        assert len(kpn) == 2
        assert len(kpn.channels) == 1


class TestAccess:
    def test_process_lookup(self, graph):
        assert graph.process("a").name == "a"

    def test_unknown_process_raises(self, graph):
        with pytest.raises(KPNError):
            graph.process("zz")

    def test_channel_lookup(self, graph):
        assert graph.channel("c1").source == "a"

    def test_unknown_channel_raises(self, graph):
        with pytest.raises(KPNError):
            graph.channel("zz")

    def test_contains_and_len(self, graph):
        assert "a" in graph
        assert "zz" not in graph
        assert len(graph) == 5

    def test_iteration_order_is_insertion_order(self, graph):
        assert [p.name for p in graph] == ["src", "a", "b", "snk", "ctrl"]

    def test_process_names(self, graph):
        assert graph.process_names == ("src", "a", "b", "snk", "ctrl")


class TestQueries:
    def test_mappable_processes_excludes_pinned_and_control(self, graph):
        assert [p.name for p in graph.mappable_processes()] == ["a", "b"]

    def test_pinned_processes(self, graph):
        assert {p.name for p in graph.pinned_processes()} == {"src", "snk"}

    def test_data_channels_exclude_control(self, graph):
        assert [c.name for c in graph.data_channels()] == ["c0", "c1", "c2"]

    def test_channels_of(self, graph):
        assert {c.name for c in graph.channels_of("b")} == {"c1", "c2", "cc"}

    def test_incoming_outgoing(self, graph):
        assert [c.name for c in graph.incoming_channels("a")] == ["c0"]
        assert [c.name for c in graph.outgoing_channels("a")] == ["c1"]

    def test_neighbours(self, graph):
        assert set(graph.neighbours("b")) == {"a", "snk", "ctrl"}

    def test_sources_and_sinks(self, graph):
        assert [p.name for p in graph.sources()] == ["src"]
        assert [p.name for p in graph.sinks()] == ["snk"]

    def test_topological_order_respects_data_channels(self, graph):
        order = graph.topological_order()
        assert order.index("src") < order.index("a") < order.index("b") < order.index("snk")

    def test_topological_order_detects_cycles(self):
        kpn = KPNGraph("cyclic")
        kpn.add_processes([Process("x"), Process("y")])
        kpn.add_channel(Channel("cxy", "x", "y"))
        kpn.add_channel(Channel("cyx", "y", "x"))
        with pytest.raises(KPNError):
            kpn.topological_order()
