"""Process assignments, channel routes and the Mapping container."""

import pytest

from repro.appmodel.implementation import DEFAULT_PORT, Implementation
from repro.csdf.phase import PhaseVector
from repro.exceptions import MappingError
from repro.mapping.assignment import ChannelRoute, ProcessAssignment
from repro.mapping.mapping import Mapping


def _impl(process="a", tile_type="GPP", energy=10.0):
    return Implementation(
        process=process,
        tile_type=tile_type,
        wcet_cycles=PhaseVector([1.0]),
        input_rates={DEFAULT_PORT: PhaseVector([1.0])},
        output_rates={DEFAULT_PORT: PhaseVector([1.0])},
        energy_nj_per_iteration=energy,
        memory_bytes=64,
    )


class TestProcessAssignment:
    def test_tile_type_from_implementation(self):
        assignment = ProcessAssignment("a", "gpp0", _impl())
        assert assignment.tile_type == "GPP"
        assert assignment.energy_nj_per_iteration == 10.0

    def test_pinned_assignment_has_no_implementation(self):
        assignment = ProcessAssignment("src", "io0")
        assert assignment.tile_type is None
        assert assignment.energy_nj_per_iteration == 0.0

    def test_implementation_process_must_match(self):
        with pytest.raises(MappingError):
            ProcessAssignment("b", "gpp0", _impl(process="a"))

    def test_moved_to_keeps_implementation(self):
        assignment = ProcessAssignment("a", "gpp0", _impl())
        moved = assignment.moved_to("gpp1")
        assert moved.tile == "gpp1"
        assert moved.implementation is assignment.implementation

    def test_empty_fields_rejected(self):
        with pytest.raises(MappingError):
            ProcessAssignment("", "gpp0")
        with pytest.raises(MappingError):
            ProcessAssignment("a", "")


class TestChannelRoute:
    def test_hops_and_locality(self):
        route = ChannelRoute("c", "t0", "t1", ((0, 0), (1, 0), (1, 1)), 100.0)
        assert route.hops == 2
        assert route.router_count == 3
        assert not route.is_local

    def test_local_route(self):
        route = ChannelRoute("c", "t0", "t0", ((0, 0),))
        assert route.is_local
        assert route.hops == 0

    def test_empty_path_rejected(self):
        with pytest.raises(MappingError):
            ChannelRoute("c", "t0", "t1", ())

    def test_negative_throughput_rejected(self):
        with pytest.raises(MappingError):
            ChannelRoute("c", "t0", "t1", ((0, 0),), required_bits_per_s=-1.0)


class TestMapping:
    def test_assign_and_lookup(self):
        mapping = Mapping("app")
        mapping.assign(ProcessAssignment("a", "gpp0", _impl()))
        assert mapping.is_assigned("a")
        assert mapping.tile_of("a") == "gpp0"
        assert mapping.processes_on("gpp0") == ("a",)
        assert mapping.used_tiles() == ("gpp0",)
        assert len(mapping) == 1

    def test_unassigned_lookup_raises(self):
        with pytest.raises(MappingError):
            Mapping("app").assignment("missing")

    def test_reassign_replaces(self):
        mapping = Mapping("app")
        mapping.assign(ProcessAssignment("a", "gpp0", _impl()))
        mapping.assign(ProcessAssignment("a", "gpp1", _impl()))
        assert mapping.tile_of("a") == "gpp1"
        assert len(mapping) == 1

    def test_unassign(self):
        mapping = Mapping("app")
        mapping.assign(ProcessAssignment("a", "gpp0", _impl()))
        mapping.unassign("a")
        assert not mapping.is_assigned("a")
        mapping.unassign("a")  # idempotent

    def test_routes(self):
        mapping = Mapping("app")
        route = ChannelRoute("c", "t0", "t1", ((0, 0), (1, 0)))
        mapping.add_route(route)
        assert mapping.is_routed("c")
        assert mapping.route("c").hops == 1
        mapping.remove_route("c")
        assert not mapping.is_routed("c")
        with pytest.raises(MappingError):
            mapping.route("c")

    def test_clear_routes(self):
        mapping = Mapping("app")
        mapping.add_route(ChannelRoute("c", "t0", "t1", ((0, 0),)))
        mapping.clear_routes()
        assert mapping.routes == ()

    def test_buffer_capacities(self):
        mapping = Mapping("app")
        mapping.set_buffer_capacity("c", 8)
        assert mapping.buffer_capacities == {"c": 8}
        with pytest.raises(MappingError):
            mapping.set_buffer_capacity("c", 0)

    def test_copy_is_independent(self):
        mapping = Mapping("app")
        mapping.assign(ProcessAssignment("a", "gpp0", _impl()))
        clone = mapping.copy()
        clone.assign(ProcessAssignment("b", "gpp1", _impl(process="b")))
        assert not mapping.is_assigned("b")
        assert clone.is_assigned("a")

    def test_computation_energy(self):
        mapping = Mapping("app")
        mapping.assign(ProcessAssignment("a", "gpp0", _impl(energy=10.0)))
        mapping.assign(ProcessAssignment("b", "gpp1", _impl(process="b", energy=5.0)))
        assert mapping.computation_energy_nj() == 15.0

    def test_is_complete(self, two_stage_als):
        mapping = Mapping(two_stage_als.name)
        assert not mapping.is_complete(two_stage_als)
        mapping.assign(ProcessAssignment("a", "gpp0", _impl(process="a")))
        mapping.assign(ProcessAssignment("b", "gpp1", _impl(process="b")))
        assert not mapping.is_complete(two_stage_als)
        for channel in two_stage_als.kpn.data_channels():
            mapping.add_route(ChannelRoute(channel.name, "x", "y", ((0, 0),)))
        assert mapping.is_complete(two_stage_als)
