"""Unit tests of the observability layer: tracer, metrics, export, report.

These pin the obs package's own contracts — span identity, deterministic
sampling, re-anchoring geometry, the registry's fold discipline, export
round-trips and the validator's teeth — independently of the engine
integration (covered by ``tests/integration/test_obs_pipeline.py``).
"""

import io
import json

import pytest

from repro.obs import (
    NULL_TRACER,
    ObsConfig,
    SpanRecord,
    TraceContext,
    Tracer,
    read_export,
    reanchor_spans,
    validate_export,
    write_export,
)
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_S, Histogram, MetricsRegistry, split_name
from repro.obs.report import main as report_main, slowest_requests, stage_breakdown


# --------------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------------- #
class TestTracer:
    def test_span_tree_identity(self):
        tracer = Tracer(ObsConfig())
        root_ctx = tracer.context_for("w:1")
        assert root_ctx is not None and root_ctx.parent_span_id is None
        root = tracer.start("request", root_ctx, start_ns=100)
        child = tracer.start("decide", root.context(), start_ns=110)
        tracer.end(child, end_ns=150)
        tracer.end(root, end_ns=200)
        spans = tracer.drain()
        assert [s.name for s in spans] == ["decide", "request"]
        decide, request = spans
        assert decide.parent_id == request.span_id
        assert request.parent_id is None
        assert decide.trace_id == request.trace_id == "w:1"
        assert request.span_id.startswith("engine:")

    def test_drain_clears_buffer(self):
        tracer = Tracer(ObsConfig())
        ctx = tracer.context_for("w:1")
        tracer.record("x", ctx, 0, 1)
        assert len(tracer) == 1
        assert len(tracer.drain()) == 1
        assert tracer.drain() == []

    def test_record_preserves_given_window_and_attrs(self):
        tracer = Tracer(ObsConfig(), process="worker-3")
        ctx = TraceContext("w:2", parent_span_id="engine:9")
        record = tracer.record("cache_lookup", ctx, 5, 9, attrs={"hit": True})
        assert (record.start_ns, record.end_ns) == (5, 9)
        assert record.parent_id == "engine:9"
        assert record.process == "worker-3"
        assert dict(record.attrs) == {"hit": True}
        assert record.duration_ns == 4

    def test_duration_never_negative(self):
        span = SpanRecord("t", "p:1", None, "x", "p", start_ns=10, end_ns=3)
        assert span.duration_ns == 0

    def test_sampling_deterministic_and_seeded(self):
        low = Tracer(ObsConfig(sample_rate=0.5, seed=1))
        twin = Tracer(ObsConfig(sample_rate=0.5, seed=1))
        other_seed = Tracer(ObsConfig(sample_rate=0.5, seed=2))
        ids = [f"w:{i}" for i in range(200)]
        verdicts = [low.sampled(t) for t in ids]
        assert verdicts == [twin.sampled(t) for t in ids]
        assert verdicts != [other_seed.sampled(t) for t in ids]
        # a 0.5 rate should sample *some* but not all of 200 ids
        assert 0 < sum(verdicts) < len(ids)

    def test_sample_rate_extremes(self):
        assert Tracer(ObsConfig(sample_rate=1.0)).sampled("anything")
        assert not Tracer(ObsConfig(sample_rate=0.0)).sampled("anything")
        assert Tracer(ObsConfig(sample_rate=0.0)).context_for("w:1") is None

    def test_null_tracer_disabled(self):
        assert not NULL_TRACER.enabled
        assert not NULL_TRACER.sampled("w:1")
        assert NULL_TRACER.context_for("w:1") is None

    def test_invalid_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            ObsConfig(sample_rate=1.5)

    def test_context_child_reparents(self):
        ctx = TraceContext("w:7")
        child = ctx.child("engine:4")
        assert child.trace_id == "w:7"
        assert child.parent_span_id == "engine:4"
        assert ctx.parent_span_id is None  # original untouched


class TestReanchor:
    def _span(self, start, end, name="s", span_id="w:1"):
        return SpanRecord("t", span_id, None, name, "w", start, end)

    def test_offsets_batch_onto_window_start(self):
        spans = [self._span(1_000_000, 1_000_400, span_id="w:1"),
                 self._span(1_000_100, 1_000_300, span_id="w:2")]
        out = reanchor_spans(spans, window_start_ns=50_000, window_end_ns=51_000)
        assert out[0].start_ns == 50_000  # earliest start lands on window start
        # relative distances preserved exactly
        assert out[1].start_ns - out[0].start_ns == 100
        assert out[1].end_ns - out[1].start_ns == 200
        assert all(dict(s.attrs)["reanchored"] for s in out)

    def test_clamped_into_window(self):
        spans = [self._span(0, 10_000)]
        out = reanchor_spans(spans, window_start_ns=100, window_end_ns=500)
        assert out[0].start_ns >= 100 and out[0].end_ns <= 500
        assert out[0].end_ns >= out[0].start_ns

    def test_empty_batch(self):
        assert reanchor_spans([], window_start_ns=0, window_end_ns=1) == []


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.count("a")
        registry.count("a", 2.0)
        assert registry.counter_value("a") == 3.0
        assert registry.counter_value("missing") == 0

    def test_gauge_fold_takes_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth", 4.0)
        b.gauge("depth", 9.0)
        a.fold(b.snapshot())
        assert a.snapshot()["gauges"]["depth"] == 9.0
        # and the other direction too — the fold is commutative
        c = MetricsRegistry()
        c.gauge("depth", 9.0)
        d = MetricsRegistry()
        d.gauge("depth", 4.0)
        c.fold(d.snapshot())
        assert c.snapshot()["gauges"]["depth"] == 9.0

    def test_histogram_fold_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (0.0002, 0.002, 0.02):
            a.observe("lat", value)
        b.observe("lat", 0.002)
        a.fold(b.snapshot())
        hist = a.histogram_for("lat")
        assert hist.count == 4
        assert hist.sum == pytest.approx(0.0242)

    def test_histogram_bounds_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.5)
        foreign = {
            "histograms": {
                "lat": {"bounds": [1.0, 2.0], "buckets": [0, 0, 1], "sum": 1.5, "count": 1}
            }
        }
        with pytest.raises(ValueError, match="bounds mismatch"):
            registry.fold(foreign)

    def test_histogram_quantile(self):
        hist = Histogram()
        for _ in range(95):
            hist.observe(0.0002)
        for _ in range(5):
            hist.observe(0.3)
        assert hist.quantile(0.5) == 0.00025  # upper bound of the holding bucket
        assert hist.quantile(0.99) == 0.5
        assert Histogram().quantile(0.5) == 0.0

    def test_histogram_overflow_bucket(self):
        hist = Histogram()
        hist.observe(99.0)  # beyond the largest bound
        assert hist.buckets[-1] == 1
        assert len(hist.buckets) == len(DEFAULT_LATENCY_BUCKETS_S) + 1

    def test_split_name(self):
        assert split_name("a.b") == ("a.b", {})
        assert split_name("a.b[x=1,y=r0]") == ("a.b", {"x": "1", "y": "r0"})
        assert split_name("weird]") == ("weird]", {})


# --------------------------------------------------------------------------- #
# Export + validator
# --------------------------------------------------------------------------- #
def _tree_spans():
    root = SpanRecord("w:1", "engine:1", None, "request", "engine", 100, 900)
    decide = SpanRecord("w:1", "engine:2", "engine:1", "decide", "engine", 150, 800)
    step = SpanRecord("w:1", "engine:3", "engine:2", "mapper.step1", "engine", 160, 400)
    return [root, decide, step]


class TestExport:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        registry = MetricsRegistry()
        registry.count("jobs", 3)
        registry.gauge("depth", 2.0)
        registry.observe("lat", 0.001)
        lines = write_export(path, _tree_spans(), metrics=registry.snapshot(), workload="demo")
        meta, spans, metrics = read_export(path)
        assert lines == 1 + 3 + 3  # meta + spans + one line per instrument
        assert meta["workload"] == "demo"
        assert meta["span_count"] == 3 and meta["trace_count"] == 1
        assert spans == _tree_spans()
        assert {m["metric"] for m in metrics} == {"counter", "gauge", "histogram"}

    def test_valid_export_passes(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_export(path, _tree_spans())
        assert validate_export(path) == []

    def test_unresolvable_parent_flagged(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        orphan = SpanRecord("w:1", "engine:9", "engine:404", "x", "engine", 0, 1)
        write_export(path, _tree_spans() + [orphan])
        problems = validate_export(path)
        assert any("parent engine:404 not in export" in p for p in problems)

    def test_cross_trace_parent_flagged(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        stray = SpanRecord("w:2", "engine:9", "engine:1", "x", "engine", 100, 200)
        write_export(path, _tree_spans() + [stray])
        problems = validate_export(path)
        assert any("belongs to another trace" in p for p in problems)

    def test_escaping_child_flagged(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        # ends 1 ms after its parent — far beyond the nesting slack
        escapee = SpanRecord("w:1", "engine:9", "engine:1", "x", "engine", 100, 1_000_900)
        write_export(path, _tree_spans() + [escapee])
        problems = validate_export(path)
        assert any("escapes parent" in p for p in problems)

    def test_time_reversal_flagged(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        backwards = SpanRecord("w:2", "engine:9", None, "x", "engine", 500, 100)
        write_export(path, _tree_spans() + [backwards])
        problems = validate_export(path)
        assert any("end < start" in p for p in problems)

    def test_tampered_meta_count_flagged(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_export(path, _tree_spans())
        lines = open(path).read().splitlines()
        meta = json.loads(lines[0])
        meta["span_count"] = 99
        with open(path, "w") as handle:
            handle.write("\n".join([json.dumps(meta)] + lines[1:]) + "\n")
        assert any("span_count" in p for p in validate_export(path))

    def test_garbage_file_reported_not_raised(self, tmp_path):
        path = str(tmp_path / "junk.jsonl")
        with open(path, "w") as handle:
            handle.write("{not json\n")
        problems = validate_export(path)
        assert problems and "unparseable" in problems[0]

    def test_read_export_from_stream(self):
        buffer = io.StringIO()
        buffer.write(json.dumps({"kind": "meta", "schema": 1, "span_count": 0}) + "\n")
        buffer.seek(0)
        meta, spans, metrics = read_export(buffer)
        assert meta["span_count"] == 0 and spans == [] and metrics == []


# --------------------------------------------------------------------------- #
# Report
# --------------------------------------------------------------------------- #
class TestReport:
    def test_stage_breakdown_aggregates_by_name(self):
        spans = _tree_spans() + [
            SpanRecord("w:2", "engine:4", None, "request", "engine", 0, 1000),
        ]
        rows = stage_breakdown(spans)
        by_name = {row[0]: row for row in rows}
        assert by_name["request"][1] == 2  # two request spans aggregated
        # sorted by total descending
        totals = [row[2] for row in rows]
        assert totals == sorted(totals, reverse=True)

    def test_slowest_requests_picks_dominant_leaf(self):
        rows = slowest_requests(_tree_spans(), top=5)
        assert rows[0][0] == "w:1"
        assert rows[0][2] == "mapper.step1"  # the only leaf

    def test_cli_renders_and_validates(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        write_export(path, _tree_spans(), workload="demo")
        assert report_main([path, "--validate"]) == 0
        out = capsys.readouterr().out
        assert "Per-stage latency breakdown" in out
        assert "valid" in out

    def test_cli_validate_fails_on_bad_export(self, tmp_path, capsys):
        path = str(tmp_path / "bad.jsonl")
        orphan = SpanRecord("w:1", "engine:9", "engine:404", "x", "engine", 0, 1)
        write_export(path, _tree_spans() + [orphan])
        assert report_main([path, "--validate"]) == 1
        assert "INVALID" in capsys.readouterr().err
