"""Unit conversions."""

import pytest

from repro import units


class TestCycleConversions:
    def test_cycles_to_ns_at_100mhz(self):
        assert units.cycles_to_ns(4, 100e6) == pytest.approx(40.0)

    def test_cycles_to_ns_at_1ghz(self):
        assert units.cycles_to_ns(1, units.GHZ) == pytest.approx(1.0)

    def test_ns_to_cycles_roundtrip(self):
        cycles = 123.0
        ns = units.cycles_to_ns(cycles, 250e6)
        assert units.ns_to_cycles(ns, 250e6) == pytest.approx(cycles)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            units.cycles_to_ns(10, 0)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            units.ns_to_cycles(10, -1)


class TestTimeConversions:
    def test_us_to_ns(self):
        assert units.us_to_ns(4.0) == pytest.approx(4000.0)

    def test_ms_to_ns(self):
        assert units.ms_to_ns(1.5) == pytest.approx(1_500_000.0)

    def test_s_to_ns(self):
        assert units.s_to_ns(2.0) == pytest.approx(2e9)

    def test_ns_to_us_roundtrip(self):
        assert units.ns_to_us(units.us_to_ns(7.25)) == pytest.approx(7.25)

    def test_ns_to_ms_roundtrip(self):
        assert units.ns_to_ms(units.ms_to_ns(0.125)) == pytest.approx(0.125)


class TestFrequencyAndEnergy:
    def test_hz_from_mhz(self):
        assert units.hz_from_mhz(100) == pytest.approx(1e8)

    def test_nj_to_j(self):
        assert units.nj_to_j(1e9) == pytest.approx(1.0)

    def test_j_to_nj_roundtrip(self):
        assert units.j_to_nj(units.nj_to_j(42.0)) == pytest.approx(42.0)


class TestThroughput:
    def test_tokens_per_second(self):
        # 80 tokens every 4 us -> 20 M tokens/s.
        assert units.throughput_tokens_per_s(80, 4000.0) == pytest.approx(20e6)

    def test_zero_period_rejected(self):
        with pytest.raises(ValueError):
            units.throughput_tokens_per_s(1, 0)
