"""Corridor budgets: inventory, reservation accounting, journaled rollback."""

import pytest

from repro.exceptions import PlatformError
from repro.interregion.budgets import CorridorBudgets
from repro.platform.regions import RegionPartition
from repro.workloads.synthetic import generate_region_mesh


@pytest.fixture()
def partition():
    """A 8x8 mesh split into 2x2 regions of span 4."""
    platform = generate_region_mesh(2, 4)
    return RegionPartition.grid(platform, 2, 2)


@pytest.fixture()
def budgets(partition):
    return CorridorBudgets(partition, fraction=0.5)


class TestInventory:
    def test_pairs_cover_every_cross_link_both_directions(self, partition, budgets):
        inventoried = {
            name for pair in budgets.pairs() for name in budgets.links_between(*pair)
        }
        assert inventoried == set(partition.cross_link_names())

    def test_pairs_are_ordered_and_adjacent_only(self, budgets):
        pairs = budgets.pairs()
        # 2x2 grid: each region touches its two edge-neighbours, both ways.
        assert len(pairs) == 8
        assert ("r0_0", "r0_1") in pairs and ("r0_1", "r0_0") in pairs
        assert ("r0_0", "r1_1") not in pairs  # diagonal: no shared boundary

    def test_capacity_is_fraction_of_boundary_capacity(self, partition, budgets):
        noc = partition.platform.noc
        for pair in budgets.pairs():
            raw = sum(
                noc.link_by_name(name).capacity_bits_per_s
                for name in budgets.links_between(*pair)
            )
            assert budgets.capacity_bits_per_s(*pair) == pytest.approx(0.5 * raw)

    def test_invalid_fraction_rejected(self, partition):
        with pytest.raises(PlatformError):
            CorridorBudgets(partition, fraction=0.0)
        with pytest.raises(PlatformError):
            CorridorBudgets(partition, fraction=1.5)


class TestReservations:
    def test_reserve_and_release_roundtrip(self, budgets):
        empty = budgets.fingerprint()
        budgets.reserve("app", "r0_0", "r0_1", 1e9)
        budgets.reserve("app", "r0_1", "r1_1", 2e9)
        assert budgets.reserved_bits_per_s("r0_0", "r0_1") == pytest.approx(1e9)
        assert budgets.residual_bits_per_s("r0_1", "r1_1") == pytest.approx(
            budgets.capacity_bits_per_s("r0_1", "r1_1") - 2e9
        )
        assert budgets.applications() == ("app",)
        assert budgets.release_application("app") == pytest.approx(3e9)
        assert budgets.fingerprint() == empty
        assert budgets.release_application("app") == 0.0

    def test_over_budget_reservation_raises(self, budgets):
        capacity = budgets.capacity_bits_per_s("r0_0", "r0_1")
        budgets.reserve("a", "r0_0", "r0_1", capacity)
        with pytest.raises(PlatformError, match="corridor budget"):
            budgets.reserve("b", "r0_0", "r0_1", 1.0)

    def test_unknown_pair_raises(self, budgets):
        with pytest.raises(PlatformError, match="no boundary links"):
            budgets.reserve("a", "r0_0", "r1_1", 1.0)

    def test_negative_reservation_raises(self, budgets):
        with pytest.raises(PlatformError):
            budgets.reserve("a", "r0_0", "r0_1", -1.0)

    def test_pressure_tracks_use(self, budgets):
        assert budgets.pressure("r0_0", "r0_1") == 0.0
        budgets.reserve("a", "r0_0", "r0_1", budgets.capacity_bits_per_s("r0_0", "r0_1"))
        assert budgets.pressure("r0_0", "r0_1") == pytest.approx(1.0)
        assert budgets.pressure("r0_0", "r1_1") == 1.0  # no links: saturated by definition


class TestTransactions:
    def test_rollback_restores_bit_identically(self, budgets):
        budgets.reserve("keep", "r0_0", "r0_1", 5e8)
        before = budgets.fingerprint()
        with budgets.transaction() as txn:
            budgets.reserve("tentative", "r0_0", "r0_1", 1e9)
            budgets.reserve("tentative", "r1_0", "r0_0", 2e9)
            budgets.release_application("keep")
            txn.rollback()
        assert budgets.fingerprint() == before

    def test_exception_rolls_back(self, budgets):
        before = budgets.fingerprint()
        with pytest.raises(RuntimeError):
            with budgets.transaction():
                budgets.reserve("x", "r0_0", "r0_1", 1e9)
                raise RuntimeError("boom")
        assert budgets.fingerprint() == before

    def test_commit_keeps_reservations(self, budgets):
        with budgets.transaction():
            budgets.reserve("x", "r0_0", "r0_1", 1e9)
        assert budgets.reserved_bits_per_s("r0_0", "r0_1") == pytest.approx(1e9)

    def test_nested_commit_folds_into_outer_rollback(self, budgets):
        before = budgets.fingerprint()
        with budgets.transaction() as outer:
            with budgets.transaction():
                budgets.reserve("inner", "r0_0", "r0_1", 1e9)
            # The inner commit folded into the outer journal...
            assert budgets.reserved_bits_per_s("r0_0", "r0_1") == pytest.approx(1e9)
            outer.rollback()
        # ...so the outer rollback undoes it as well.
        assert budgets.fingerprint() == before

    def test_double_close_is_guarded(self, budgets):
        with budgets.transaction() as txn:
            budgets.reserve("x", "r0_0", "r0_1", 1e9)
            txn.rollback()
            with pytest.raises(PlatformError):
                txn.commit()
            txn.rollback()  # idempotent
