"""Tile types, resources, tiles and the platform container."""

import pytest

from repro.exceptions import PlatformError
from repro.platform.platform import Platform
from repro.platform.resources import ResourceBudget, ResourceRequirement
from repro.platform.tile import Tile
from repro.platform.tile_type import TileType
from repro.platform.topology import build_mesh_noc


class TestTileType:
    def test_defaults(self):
        tile_type = TileType("ARM")
        assert tile_type.is_processing
        assert tile_type.frequency_hz == pytest.approx(100e6)

    def test_empty_name_rejected(self):
        with pytest.raises(PlatformError):
            TileType("")

    def test_non_positive_frequency_rejected(self):
        with pytest.raises(PlatformError):
            TileType("ARM", frequency_hz=0)

    def test_negative_idle_power_rejected(self):
        with pytest.raises(PlatformError):
            TileType("ARM", idle_power_mw=-1)


class TestResources:
    def test_requirement_fits_within_budget(self):
        budget = ResourceBudget(max_processes=1, memory_bytes=1000)
        assert ResourceRequirement(memory_bytes=500).fits_within(budget)
        assert not ResourceRequirement(memory_bytes=2000).fits_within(budget)

    def test_zero_slot_budget_fits_nothing(self):
        budget = ResourceBudget(max_processes=0)
        assert not ResourceRequirement().fits_within(budget)

    def test_cycle_budget_checked_when_period_known(self):
        budget = ResourceBudget()
        requirement = ResourceRequirement(compute_cycles_per_iteration=500)
        assert requirement.fits_within(budget, period_cycles=1000)
        assert not requirement.fits_within(budget, period_cycles=400)

    def test_negative_values_rejected(self):
        with pytest.raises(PlatformError):
            ResourceBudget(max_processes=-1)
        with pytest.raises(PlatformError):
            ResourceRequirement(memory_bytes=-1)


class TestTile:
    def test_tile_properties(self):
        tile = Tile("arm1", TileType("ARM", frequency_hz=2e8), (1, 2))
        assert tile.type_name == "ARM"
        assert tile.x == 1 and tile.y == 2
        assert tile.frequency_hz == 2e8
        assert tile.is_processing

    def test_non_processing_type(self):
        tile = Tile("adc", TileType("IO", is_processing=False), (0, 0))
        assert not tile.is_processing

    def test_zero_slots_means_not_processing(self):
        tile = Tile("arm", TileType("ARM"), (0, 0), resources=ResourceBudget(max_processes=0))
        assert not tile.is_processing

    def test_invalid_position_rejected(self):
        with pytest.raises(PlatformError):
            Tile("t", TileType("ARM"), (0, -1))

    def test_invalid_ni_capacity_rejected(self):
        with pytest.raises(PlatformError):
            Tile("t", TileType("ARM"), (0, 0), ni_capacity_bits_per_s=0)


class TestPlatform:
    def _platform(self):
        noc = build_mesh_noc(2, 2)
        platform = Platform("p", noc)
        arm = TileType("ARM")
        dsp = TileType("DSP")
        platform.add_tile(Tile("arm0", arm, (0, 0)))
        platform.add_tile(Tile("arm1", arm, (1, 0)))
        platform.add_tile(Tile("dsp0", dsp, (0, 1)))
        return platform

    def test_tile_lookup(self):
        platform = self._platform()
        assert platform.tile("arm0").position == (0, 0)
        assert "arm0" in platform
        assert len(platform) == 3

    def test_unknown_tile_raises(self):
        with pytest.raises(PlatformError):
            self._platform().tile("zz")

    def test_tile_must_sit_on_existing_router(self):
        platform = self._platform()
        with pytest.raises(PlatformError):
            platform.add_tile(Tile("far", TileType("ARM"), (5, 5)))

    def test_one_tile_per_router_by_default(self):
        platform = self._platform()
        with pytest.raises(PlatformError):
            platform.add_tile(Tile("other", TileType("DSP"), (0, 0)))

    def test_shared_routers_can_be_enabled(self):
        noc = build_mesh_noc(1, 1)
        platform = Platform("p", noc, allow_shared_routers=True)
        platform.add_tile(Tile("a", TileType("ARM"), (0, 0)))
        platform.add_tile(Tile("b", TileType("DSP"), (0, 0)))
        assert len(platform.tiles_at((0, 0))) == 2

    def test_tiles_of_type(self):
        platform = self._platform()
        assert [t.name for t in platform.tiles_of_type("ARM")] == ["arm0", "arm1"]
        assert [t.name for t in platform.tiles_of_type(TileType("DSP"))] == ["dsp0"]

    def test_tile_types_in_first_appearance_order(self):
        platform = self._platform()
        assert [t.name for t in platform.tile_types()] == ["ARM", "DSP"]

    def test_distance_between_tiles(self):
        platform = self._platform()
        assert platform.distance("arm0", "arm1") == 1
        assert platform.distance("arm0", "dsp0") == 1
        assert platform.distance("arm1", "dsp0") == 2

    def test_duplicate_tile_name_rejected(self):
        platform = self._platform()
        with pytest.raises(PlatformError):
            platform.add_tile(Tile("arm0", TileType("ARM"), (1, 1)))
