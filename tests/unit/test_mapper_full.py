"""The full spatial mapper: feedback loop, result bookkeeping, configuration."""

import pytest

from repro.exceptions import NoFeasibleMappingError
from repro.kpn.als import ApplicationLevelSpec
from repro.kpn.qos import QoSConstraints
from repro.mapping.result import MappingStatus
from repro.platform.state import PlatformState, ProcessAllocation
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.mapper import SpatialMapper
from repro.workloads import hiperlan2


class TestHiperlanMapping:
    def test_full_mapping_is_feasible(self, case_study):
        als, platform, library = case_study
        result = SpatialMapper(platform, library).map(als)
        assert result.status is MappingStatus.FEASIBLE
        assert result.manhattan_cost == pytest.approx(7.0)
        assert result.mapped_csdf is not None
        assert result.runtime_s > 0

    def test_final_energy_matches_table1_selection(self, case_study):
        als, platform, library = case_study
        result = SpatialMapper(platform, library).map(als)
        # Montium implementations for the two heavy kernels, ARM for the rest:
        # 32? no - prefix/freq stay on ARM: 60 + 62, iOFDM + remainder on Montium: 143 + 76.
        assert result.mapping.computation_energy_nj() == pytest.approx(60 + 62 + 143 + 76)

    def test_summary_mentions_feasibility(self, case_study):
        als, platform, library = case_study
        result = SpatialMapper(platform, library).map(als)
        assert "feasible" in result.summary()

    def test_trace_is_kept_on_the_mapper(self, case_study):
        als, platform, library = case_study
        mapper = SpatialMapper(platform, library)
        mapper.map(als)
        assert mapper.last_trace.step2_traces
        assert mapper.last_trace.last_step2_trace.final_cost == pytest.approx(7.0)

    def test_mapping_respects_existing_allocations(self, case_study):
        als, platform, library = case_study
        state = PlatformState(platform)
        state.allocate_process(ProcessAllocation("other", "x", "montium2"))
        result = SpatialMapper(platform, library).map(als, state)
        used_tiles = {a.tile for a in result.mapping.assignments if a.implementation}
        assert "montium2" not in used_tiles

    def test_partially_occupied_platform_cannot_host_all_processes(self, case_study):
        """With one Montium taken only three processing tiles remain for the
        four receiver kernels, so the mapping attempt fails (and says why)."""
        als, platform, library = case_study
        state = PlatformState(platform)
        state.allocate_process(ProcessAllocation("other", "x", "montium1"))
        mapper = SpatialMapper(platform, library)
        result = mapper.map(als, state)
        assert result.status is MappingStatus.FAILED
        assert result.diagnostics

    def test_feedback_loop_iterates_on_infeasible_qos(self, case_study):
        """A period below what the pipeline can sustain (but still routable)
        triggers step-4 feedback (ban the bottleneck implementation) and a new
        refinement iteration before giving up."""
        als, platform, library = case_study
        impossible = ApplicationLevelSpec(
            kpn=als.kpn, qos=QoSConstraints(period_ns=3000.0), name="impossible"
        )
        mapper = SpatialMapper(platform, library)
        result = mapper.map(impossible)
        assert not result.is_feasible
        assert mapper.last_trace.refinement_iterations >= 2
        assert mapper.last_trace.feedback_log

    def test_raise_on_failure(self, case_study):
        als, platform, library = case_study
        state = PlatformState(platform)
        for tile in ("montium1", "montium2", "arm1", "arm2"):
            state.allocate_process(ProcessAllocation("other", f"p_{tile}", tile))
        mapper = SpatialMapper(platform, library)
        with pytest.raises(NoFeasibleMappingError):
            mapper.map(als, state, raise_on_failure=True)

    def test_failed_mapping_reports_diagnostics(self, case_study):
        als, platform, library = case_study
        state = PlatformState(platform)
        for tile in ("montium1", "montium2", "arm1", "arm2"):
            state.allocate_process(ProcessAllocation("other", f"p_{tile}", tile))
        result = SpatialMapper(platform, library).map(als, state)
        assert result.status is MappingStatus.FAILED
        assert result.diagnostics

    def test_unsustainable_period_returns_best_adherent_mapping(self, case_study):
        als, platform, library = case_study
        impossible = ApplicationLevelSpec(
            kpn=als.kpn, qos=QoSConstraints(period_ns=3000.0), name="impossible"
        )
        result = SpatialMapper(platform, library).map(impossible)
        assert result.status is MappingStatus.ADHERENT
        assert not result.is_feasible
        assert result.feasibility is not None and not result.feasibility.satisfied

    def test_unroutable_period_returns_adequate_mapping(self, case_study):
        """A nonsensically tight period makes even the guaranteed-throughput
        routing impossible; the mapper still returns its best partial result."""
        als, platform, library = case_study
        impossible = ApplicationLevelSpec(
            kpn=als.kpn, qos=QoSConstraints(period_ns=10.0), name="unroutable"
        )
        result = SpatialMapper(platform, library).map(impossible)
        assert result.status is MappingStatus.ADEQUATE
        assert not result.is_feasible

    def test_max_feedback_iterations_bounds_work(self, case_study):
        als, platform, library = case_study
        config = MapperConfig(max_feedback_iterations=1)
        result = SpatialMapper(platform, library, config).map(als)
        assert result.iterations == 1


class TestMappingStatusOrdering:
    def test_at_least(self):
        assert MappingStatus.FEASIBLE.at_least(MappingStatus.ADHERENT)
        assert MappingStatus.ADHERENT.at_least(MappingStatus.ADHERENT)
        assert not MappingStatus.ADEQUATE.at_least(MappingStatus.ADHERENT)
        assert not MappingStatus.FAILED.at_least(MappingStatus.FEASIBLE)
