"""Adequacy/adherence criteria and the cost models."""

import pytest

from repro.appmodel.implementation import DEFAULT_PORT, Implementation
from repro.appmodel.library import ImplementationLibrary
from repro.csdf.phase import PhaseVector
from repro.kpn.als import ApplicationLevelSpec
from repro.kpn.qos import QoSConstraints
from repro.mapping.assignment import ChannelRoute, ProcessAssignment
from repro.mapping.cost import CostModel, communication_energy_nj, manhattan_cost, mapping_energy_nj
from repro.mapping.mapping import Mapping
from repro.mapping.properties import (
    adequacy_violations,
    adherence_violations,
    is_adequate,
    is_adherent,
)
from repro.platform.state import PlatformState, ProcessAllocation


def _impl(process, tile_type="GPP", energy=10.0, memory=64):
    return Implementation(
        process=process,
        tile_type=tile_type,
        wcet_cycles=PhaseVector([1.0]),
        input_rates={DEFAULT_PORT: PhaseVector([1.0])},
        output_rates={DEFAULT_PORT: PhaseVector([1.0])},
        energy_nj_per_iteration=energy,
        memory_bytes=memory,
    )


@pytest.fixture()
def library():
    return ImplementationLibrary(
        [_impl("a", "GPP"), _impl("a", "DSP", energy=4.0), _impl("b", "GPP", energy=6.0)]
    )


@pytest.fixture()
def als(two_stage_kpn):
    return ApplicationLevelSpec(kpn=two_stage_kpn, qos=QoSConstraints(period_ns=10_000.0))


class TestAdequacy:
    def test_adequate_mapping(self, small_platform, library):
        mapping = Mapping("app")
        mapping.assign(ProcessAssignment("a", "gpp0", library.implementation_for("a", "GPP")))
        assert is_adequate(mapping, small_platform, library)

    def test_wrong_tile_type_is_inadequate(self, small_platform, library):
        mapping = Mapping("app")
        mapping.assign(ProcessAssignment("a", "dsp0", library.implementation_for("a", "GPP")))
        violations = adequacy_violations(mapping, small_platform, library)
        assert violations
        assert "dsp0" in violations[0]

    def test_pinned_processes_are_always_adequate(self, small_platform, library):
        mapping = Mapping("app")
        mapping.assign(ProcessAssignment("src", "io0"))
        assert is_adequate(mapping, small_platform, library)

    def test_process_without_implementation_for_tile_type(self, small_platform, library):
        mapping = Mapping("app")
        mapping.assign(ProcessAssignment("b", "dsp0", _impl("b", "DSP")))
        # The library has no b@DSP implementation, so this placement is flagged.
        violations = adequacy_violations(mapping, small_platform, library)
        assert any("no implementation" in v for v in violations)


class TestAdherence:
    def test_slot_overflow_detected(self, small_platform, library):
        mapping = Mapping("app")
        mapping.assign(ProcessAssignment("a", "gpp0", library.implementation_for("a", "GPP")))
        mapping.assign(ProcessAssignment("b", "gpp0", library.implementation_for("b", "GPP")))
        violations = adherence_violations(mapping, small_platform, library)
        assert any("host 2 processes" in v for v in violations)

    def test_existing_allocations_count_towards_slots(self, small_platform, library):
        state = PlatformState(small_platform)
        state.allocate_process(ProcessAllocation("other", "x", "gpp0"))
        mapping = Mapping("app")
        mapping.assign(ProcessAssignment("a", "gpp0", library.implementation_for("a", "GPP")))
        # Without the state the single process fits; with the other application's
        # allocation on the same tile the slot budget is exceeded.
        assert is_adherent(mapping, small_platform, library)
        assert not is_adherent(mapping, small_platform, library, state)
        violations = adherence_violations(mapping, small_platform, library, state)
        assert violations

    def test_memory_overflow_detected(self, small_platform):
        big = _impl("a", "GPP", memory=small_platform.tile("gpp0").resources.memory_bytes + 1)
        library = ImplementationLibrary([big])
        mapping = Mapping("app")
        mapping.assign(ProcessAssignment("a", "gpp0", big))
        violations = adherence_violations(mapping, small_platform, library)
        assert any("memory" in v for v in violations)

    def test_route_over_missing_link_detected(self, small_platform, library):
        mapping = Mapping("app")
        mapping.assign(ProcessAssignment("a", "gpp0", library.implementation_for("a", "GPP")))
        mapping.add_route(
            ChannelRoute("c1", "gpp0", "dsp0", ((0, 0), (1, 1)), required_bits_per_s=1.0)
        )
        violations = adherence_violations(mapping, small_platform, library)
        assert any("missing link" in v for v in violations)

    def test_link_capacity_overflow_detected(self, small_platform, library):
        capacity = small_platform.noc.link((0, 0), (1, 0)).capacity_bits_per_s
        mapping = Mapping("app")
        mapping.assign(ProcessAssignment("a", "gpp0", library.implementation_for("a", "GPP")))
        mapping.assign(ProcessAssignment("b", "gpp1", library.implementation_for("b", "GPP")))
        mapping.add_route(
            ChannelRoute("c1", "gpp0", "gpp1", ((0, 0), (1, 0)), required_bits_per_s=capacity * 2)
        )
        violations = adherence_violations(mapping, small_platform, library)
        assert any("bit/s" in v for v in violations)

    def test_route_endpoint_mismatch_detected(self, small_platform, library, als):
        mapping = Mapping("app")
        mapping.assign(ProcessAssignment("a", "gpp0", library.implementation_for("a", "GPP")))
        mapping.assign(ProcessAssignment("b", "gpp1", library.implementation_for("b", "GPP")))
        # Route claims 'a' sits on dsp0, contradicting the assignment.
        mapping.add_route(
            ChannelRoute("c1", "dsp0", "gpp1", ((0, 1), (1, 1), (1, 0)), required_bits_per_s=1.0)
        )
        violations = adherence_violations(mapping, small_platform, library, als=als)
        assert any("assumes process" in v for v in violations)

    def test_clean_mapping_is_adherent(self, small_platform, library, als):
        mapping = Mapping("app")
        mapping.assign(ProcessAssignment("a", "gpp0", library.implementation_for("a", "GPP")))
        mapping.assign(ProcessAssignment("b", "gpp1", library.implementation_for("b", "GPP")))
        assert is_adherent(mapping, small_platform, library, als=als)


class TestCostModels:
    def _mapping(self, library):
        mapping = Mapping("two_stage")
        mapping.assign(ProcessAssignment("a", "gpp0", library.implementation_for("a", "GPP")))
        mapping.assign(ProcessAssignment("b", "dsp0", _impl("b", "DSP", energy=3.0)))
        return mapping

    def test_manhattan_cost_counts_placed_channels(self, small_platform, library, als):
        mapping = self._mapping(library)
        # src/snk pinned on io0 (1,1): c0 io0->gpp0 distance 2, c1 gpp0->dsp0 distance 2... wait
        cost = manhattan_cost(mapping, als, small_platform)
        expected = (
            small_platform.distance("io0", "gpp0")
            + small_platform.distance("gpp0", "dsp0")
            + small_platform.distance("dsp0", "io0")
        )
        assert cost == expected

    def test_partial_mapping_skips_unplaced_channels(self, small_platform, library, als):
        mapping = Mapping("two_stage")
        mapping.assign(ProcessAssignment("a", "gpp0", library.implementation_for("a", "GPP")))
        cost = manhattan_cost(mapping, als, small_platform)
        assert cost == small_platform.distance("io0", "gpp0")

    def test_token_weighted_cost(self, small_platform, library, als):
        mapping = self._mapping(library)
        weighted = manhattan_cost(mapping, als, small_platform, weighted_by_tokens=True)
        unweighted = manhattan_cost(mapping, als, small_platform)
        assert weighted > unweighted

    def test_communication_energy_uses_routes_when_present(self, small_platform, library, als):
        mapping = self._mapping(library)
        model = CostModel(energy_per_bit_per_hop_nj=0.01)
        estimate = communication_energy_nj(mapping, als, small_platform, model)
        mapping.add_route(
            ChannelRoute("c1", "gpp0", "dsp0", ((0, 0), (0, 1)), required_bits_per_s=1.0)
        )
        with_route = communication_energy_nj(mapping, als, small_platform, model)
        # The routed path (1 hop) is shorter than the Manhattan estimate used before.
        assert with_route <= estimate

    def test_local_channel_cheaper_than_remote(self, small_platform, als):
        local_library = ImplementationLibrary(
            [_impl("a", "GPP"), _impl("b", "GPP", energy=3.0)]
        )
        same_tile = Mapping("two_stage")
        same_tile.assign(ProcessAssignment("a", "gpp0", local_library.implementation_for("a", "GPP")))
        same_tile.assign(ProcessAssignment("b", "gpp0", local_library.implementation_for("b", "GPP")))
        far = Mapping("two_stage")
        far.assign(ProcessAssignment("a", "gpp0", local_library.implementation_for("a", "GPP")))
        far.assign(ProcessAssignment("b", "gpp1", local_library.implementation_for("b", "GPP")))
        model = CostModel(energy_per_bit_per_hop_nj=0.01, local_channel_energy_per_bit_nj=0.0001)
        assert communication_energy_nj(same_tile, als, small_platform, model) < (
            communication_energy_nj(far, als, small_platform, model)
        )

    def test_total_energy_includes_activation_penalty(self, small_platform, library, als):
        mapping = self._mapping(library)
        without = mapping_energy_nj(mapping, als, small_platform, CostModel())
        with_activation = mapping_energy_nj(
            mapping, als, small_platform, CostModel(tile_activation_energy_nj=100.0)
        )
        assert with_activation == pytest.approx(without + 200.0)

    def test_cost_model_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            CostModel(energy_per_bit_per_hop_nj=-1.0)
