"""The paper's phase-notation parser and formatter."""

import pytest

from repro.appmodel.parser import format_phase_notation, parse_phase_notation


class TestParser:
    def test_plain_list(self):
        assert parse_phase_notation("<64, 0, 0>") == (64.0, 0.0, 0.0)

    def test_angle_brackets_optional(self):
        assert parse_phase_notation("64, 0, 0") == (64.0, 0.0, 0.0)

    def test_scalar_repetition(self):
        assert parse_phase_notation("<1^4>") == (1.0, 1.0, 1.0, 1.0)

    def test_pattern_repetition(self):
        assert parse_phase_notation("<(8,0)^3>") == (8.0, 0.0, 8.0, 0.0, 8.0, 0.0)

    def test_paper_prefix_removal_arm_input(self):
        values = parse_phase_notation("<8^2, (8,0)^8>")
        assert len(values) == 18
        assert sum(values) == 80

    def test_paper_montium_inverse_ofdm(self):
        values = parse_phase_notation("<1^64, 0^53>")
        assert len(values) == 117
        assert sum(values) == 64

    def test_variables_in_values(self):
        assert parse_phase_notation("<73-b>", {"b": 6}) == (67.0,)
        assert parse_phase_notation("<b+2>", {"b": 6}) == (8.0,)

    def test_variables_in_repetition_count(self):
        assert parse_phase_notation("<1^b>", {"b": 3}) == (1.0, 1.0, 1.0)

    def test_unbound_variable_rejected(self):
        with pytest.raises(ValueError):
            parse_phase_notation("<1^b>")

    def test_unbalanced_parentheses_rejected(self):
        with pytest.raises(ValueError):
            parse_phase_notation("<(8,0^2>")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_phase_notation("<>")

    def test_malicious_expression_rejected(self):
        with pytest.raises(ValueError):
            parse_phase_notation("<__import__('os').system('true')>")

    def test_negative_repetition_rejected(self):
        with pytest.raises(ValueError):
            parse_phase_notation("<1^-2>")

    def test_fractional_repetition_rejected(self):
        with pytest.raises(ValueError):
            parse_phase_notation("<1^1.5>")


class TestFormatter:
    def test_runs_are_compressed(self):
        assert format_phase_notation((1, 1, 1, 0)) == "<1^3, 0>"

    def test_single_value(self):
        assert format_phase_notation((5,)) == "<5>"

    def test_roundtrip_through_parser(self):
        original = (8.0, 8.0, 0.0, 0.0, 0.0, 3.0)
        assert parse_phase_notation(format_phase_notation(original)) == original

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_phase_notation(())
