"""Repetition vectors and consistency of CSDF graphs."""

import pytest

from repro.csdf.builder import CSDFBuilder
from repro.csdf.repetition import cycle_vector, is_consistent, repetition_vector
from repro.exceptions import InconsistentGraphError


class TestRepetitionVector:
    def test_unit_rate_chain(self, simple_chain_csdf):
        assert repetition_vector(simple_chain_csdf) == {"a": 1, "b": 1, "c": 1}

    def test_multirate_chain(self, multirate_csdf):
        # a produces 2, b consumes 1 => b fires twice per a firing;
        # b produces 3, c consumes 2 => c fires 3 times per 2 b firings.
        assert repetition_vector(multirate_csdf) == {"a": 1, "b": 2, "c": 3}

    def test_cycle_vector_counts_phase_cycles(self):
        graph = (
            CSDFBuilder("g")
            .actor("a", [1.0])
            .actor("b", [1.0, 1.0])  # two phases
            .edge("a", "b", production=[4], consumption=[1, 1])
            .build()
        )
        cycles = cycle_vector(graph)
        # a produces 4 per cycle; b consumes 2 per cycle of 2 phases -> 2 cycles of b.
        assert cycles == {"a": 1, "b": 2}
        assert repetition_vector(graph) == {"a": 1, "b": 4}

    def test_inconsistent_graph_detected(self):
        graph = (
            CSDFBuilder("bad")
            .actor("a", [1.0])
            .actor("b", [1.0])
            .edge("a", "b", production=[2], consumption=[1])
            .edge("a", "b", production=[1], consumption=[1])
            .build()
        )
        with pytest.raises(InconsistentGraphError):
            repetition_vector(graph)
        assert not is_consistent(graph)

    def test_cyclic_graph_with_consistent_rates(self):
        graph = (
            CSDFBuilder("loop")
            .actor("a", [1.0])
            .actor("b", [1.0])
            .edge("a", "b", production=[1], consumption=[1])
            .edge("b", "a", production=[1], consumption=[1], initial_tokens=1)
            .build()
        )
        assert repetition_vector(graph) == {"a": 1, "b": 1}

    def test_disconnected_components_each_get_a_solution(self):
        graph = (
            CSDFBuilder("two_parts")
            .actor("a", [1.0])
            .actor("b", [1.0])
            .actor("x", [1.0])
            .actor("y", [1.0])
            .edge("a", "b", production=[2], consumption=[1])
            .edge("x", "y", production=[1], consumption=[3])
            .build()
        )
        repetitions = repetition_vector(graph)
        assert repetitions["b"] == 2 * repetitions["a"]
        assert repetitions["x"] == 3 * repetitions["y"]

    def test_zero_rate_on_one_side_is_inconsistent(self):
        graph = (
            CSDFBuilder("zero")
            .actor("a", [1.0])
            .actor("b", [1.0, 1.0])
            .edge("a", "b", production=[1], consumption=[0, 0])
            .build()
        )
        with pytest.raises(InconsistentGraphError):
            repetition_vector(graph)

    def test_empty_graph_rejected(self):
        from repro.csdf.graph import CSDFGraph

        with pytest.raises(InconsistentGraphError):
            repetition_vector(CSDFGraph("empty"))

    def test_hiperlan_like_rates(self):
        # Mirrors the A/D -> prefix-removal -> frequency-offset structure.
        graph = (
            CSDFBuilder("hl2")
            .actor("adc", [0.0])
            .actor("pfx", [1.0] * 18)
            .actor("frq", [18.0, 32.0, 18.0])
            .edge("adc", "pfx", production=[80],
                  consumption=[8, 8, 8, 0, 8, 0, 8, 0, 8, 0, 8, 0, 8, 0, 8, 0, 8, 0])
            .edge("pfx", "frq",
                  production=[0, 0, 0, 8, 0, 8, 0, 8, 0, 8, 0, 8, 0, 8, 0, 8, 0, 8],
                  consumption=[8, 0, 0])
            .build()
        )
        repetitions = repetition_vector(graph)
        assert repetitions["adc"] == 1
        assert repetitions["pfx"] == 18
        assert repetitions["frq"] == 24  # 8 cycles of 3 phases
