"""Phase vectors and the compact phase specification."""

import pytest

from repro.csdf.phase import PhaseVector, expand_phase_spec


class TestExpandPhaseSpec:
    def test_plain_numbers(self):
        assert expand_phase_spec([64, 0, 0]) == (64, 0, 0)

    def test_repeated_scalar(self):
        assert expand_phase_spec([(8, 2)]) == (8, 8)

    def test_repeated_pattern(self):
        assert expand_phase_spec([((8, 0), 3)]) == (8, 0, 8, 0, 8, 0)

    def test_paper_prefix_removal_input(self):
        values = expand_phase_spec([(8, 2), ((8, 0), 8)])
        assert len(values) == 18
        assert sum(values) == 80

    def test_zero_repetition_gives_nothing(self):
        assert expand_phase_spec([(5, 0), 1]) == (1,)

    def test_invalid_element_rejected(self):
        with pytest.raises(ValueError):
            expand_phase_spec(["eight"])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            expand_phase_spec([(8, -1)])


class TestPhaseVector:
    def test_requires_at_least_one_phase(self):
        with pytest.raises(ValueError):
            PhaseVector([])

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            PhaseVector([1, -2])

    def test_rejects_non_numbers(self):
        with pytest.raises(ValueError):
            PhaseVector([1, "x"])

    def test_length_and_iteration(self):
        vector = PhaseVector([1, 2, 3])
        assert len(vector) == 3
        assert list(vector) == [1, 2, 3]

    def test_cyclic_access(self):
        vector = PhaseVector([1, 2, 3])
        assert vector.at(0) == 1
        assert vector.at(4) == 2
        assert vector.at(300) == 1

    def test_total_and_max(self):
        vector = PhaseVector([1, 2, 3])
        assert vector.total() == 6
        assert vector.max() == 3

    def test_is_zero(self):
        assert PhaseVector([0, 0]).is_zero()
        assert not PhaseVector([0, 1]).is_zero()

    def test_equality_with_tuples(self):
        assert PhaseVector([1, 2]) == (1, 2)
        assert PhaseVector([1, 2]) == PhaseVector([1, 2])
        assert PhaseVector([1, 2]) != PhaseVector([2, 1])

    def test_hashable(self):
        assert hash(PhaseVector([1, 2])) == hash(PhaseVector([1, 2]))

    def test_constant_constructor(self):
        assert PhaseVector.constant(4, 3) == (4, 4, 4)
        with pytest.raises(ValueError):
            PhaseVector.constant(4, 0)

    def test_from_spec(self):
        assert PhaseVector.from_spec([(1, 2), 5]) == (1, 1, 5)

    def test_repeated(self):
        assert PhaseVector([1, 2]).repeated(2) == (1, 2, 1, 2)
        with pytest.raises(ValueError):
            PhaseVector([1]).repeated(0)

    def test_scaled(self):
        assert PhaseVector([1, 2]).scaled(3) == (3, 6)
        with pytest.raises(ValueError):
            PhaseVector([1]).scaled(-1)

    def test_compact_str_compresses_runs(self):
        assert PhaseVector([1, 1, 1, 2]).compact_str() == "<1^3, 2>"
        assert PhaseVector([5]).compact_str() == "<5>"
