"""NoC model, topology builders and routing."""

import pytest

from repro.exceptions import PlatformError, RoutingError
from repro.platform.noc import Link, NoC, Router
from repro.platform.routing import (
    capacity_aware_shortest_path,
    manhattan_distance,
    route_hop_count,
    xy_route,
)
from repro.platform.topology import build_mesh_noc, build_torus_noc


class TestRouterAndLink:
    def test_router_name_and_latency(self):
        router = Router((2, 1), latency_cycles=4, frequency_hz=100e6)
        assert router.name == "R2_1"
        assert router.latency_ns == pytest.approx(40.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(PlatformError):
            Router((0, 0), latency_cycles=-1)

    def test_link_name(self):
        link = Link((0, 0), (1, 0), 1e9)
        assert link.name == "L0_0__1_0"

    def test_link_self_loop_rejected(self):
        with pytest.raises(PlatformError):
            Link((0, 0), (0, 0), 1e9)

    def test_link_capacity_must_be_positive(self):
        with pytest.raises(PlatformError):
            Link((0, 0), (1, 0), 0)


class TestNoCContainer:
    def test_duplicate_router_rejected(self):
        noc = NoC()
        noc.add_router(Router((0, 0)))
        with pytest.raises(PlatformError):
            noc.add_router(Router((0, 0)))

    def test_link_requires_routers(self):
        noc = NoC()
        noc.add_router(Router((0, 0)))
        with pytest.raises(PlatformError):
            noc.add_link(Link((0, 0), (1, 0), 1e9))

    def test_neighbours(self):
        noc = build_mesh_noc(3, 3)
        assert set(noc.neighbours((1, 1))) == {(0, 1), (2, 1), (1, 0), (1, 2)}
        assert set(noc.neighbours((0, 0))) == {(1, 0), (0, 1)}

    def test_links_on_path(self):
        noc = build_mesh_noc(3, 1)
        links = noc.links_on_path(((0, 0), (1, 0), (2, 0)))
        assert [l.name for l in links] == ["L0_0__1_0", "L1_0__2_0"]

    def test_unknown_link_raises(self):
        noc = build_mesh_noc(2, 2)
        with pytest.raises(PlatformError):
            noc.link((0, 0), (1, 1))


class TestTopologies:
    def test_mesh_router_and_link_counts(self):
        noc = build_mesh_noc(3, 3)
        assert len(noc) == 9
        # 2 * (width-1)*height + 2 * width*(height-1) directed links.
        assert len(noc.links) == 2 * (2 * 3) + 2 * (3 * 2)

    def test_mesh_dimensions_must_be_positive(self):
        with pytest.raises(PlatformError):
            build_mesh_noc(0, 3)

    def test_torus_has_wraparound_links(self):
        torus = build_torus_noc(3, 3)
        assert torus.has_link((2, 0), (0, 0))
        assert torus.has_link((0, 2), (0, 0))

    def test_torus_requires_three_per_dimension(self):
        with pytest.raises(PlatformError):
            build_torus_noc(2, 3)


class TestRouting:
    def test_manhattan_distance(self):
        assert manhattan_distance((0, 0), (2, 3)) == 5
        assert manhattan_distance((1, 1), (1, 1)) == 0

    def test_xy_route_goes_x_first(self):
        noc = build_mesh_noc(3, 3)
        path = xy_route(noc, (0, 0), (2, 1))
        assert path == ((0, 0), (1, 0), (2, 0), (2, 1))

    def test_route_hop_count(self):
        assert route_hop_count(((0, 0), (1, 0))) == 1
        assert route_hop_count(((0, 0),)) == 0
        assert route_hop_count(()) == 0

    def test_shortest_path_matches_manhattan_on_empty_mesh(self):
        noc = build_mesh_noc(4, 4)
        path = capacity_aware_shortest_path(noc, (0, 0), (3, 2))
        assert route_hop_count(path) == manhattan_distance((0, 0), (3, 2))

    def test_same_source_and_target(self):
        noc = build_mesh_noc(2, 2)
        assert capacity_aware_shortest_path(noc, (1, 1), (1, 1)) == ((1, 1),)

    def test_loaded_links_are_avoided(self):
        noc = build_mesh_noc(3, 1, link_capacity_bits_per_s=100.0)
        # Fully load the direct link (0,0)->(1,0); no alternative exists on a 3x1 mesh,
        # so routing with a demand must fail.
        loads = {"L0_0__1_0": 100.0}
        with pytest.raises(RoutingError):
            capacity_aware_shortest_path(noc, (0, 0), (2, 0), 50.0, loads)

    def test_detour_taken_when_direct_link_full(self):
        noc = build_mesh_noc(2, 2, link_capacity_bits_per_s=100.0)
        loads = {"L0_0__1_0": 100.0}
        path = capacity_aware_shortest_path(noc, (0, 0), (1, 0), 50.0, loads)
        assert path == ((0, 0), (0, 1), (1, 1), (1, 0))

    def test_requirement_within_capacity_is_fine(self):
        noc = build_mesh_noc(2, 1, link_capacity_bits_per_s=100.0)
        loads = {"L0_0__1_0": 30.0}
        path = capacity_aware_shortest_path(noc, (0, 0), (1, 0), 70.0, loads)
        assert path == ((0, 0), (1, 0))

    def test_negative_requirement_rejected(self):
        noc = build_mesh_noc(2, 1)
        with pytest.raises(RoutingError):
            capacity_aware_shortest_path(noc, (0, 0), (1, 0), -1.0)

    def test_deterministic_tie_breaking(self):
        noc = build_mesh_noc(3, 3)
        first = capacity_aware_shortest_path(noc, (0, 0), (2, 2))
        second = capacity_aware_shortest_path(noc, (0, 0), (2, 2))
        assert first == second
