"""Unit tests of the per-region delta journal and its replay validation.

The stateful drain protocol hinges on three properties the differential
suites cannot isolate: the journal's (seq, fingerprint-digest) watermark
(:meth:`RegionJournal.ops_since`, eviction, reset), the coverage filter
that routes one committed mapping into exactly the journals it touches,
and :meth:`PlatformState.replay_region_ops` rejecting every malformed
chain — gaps, reorderings, fingerprint divergence — instead of
half-applying it.
"""

import pytest

from repro.exceptions import PlatformError
from repro.platform.state import (
    LinkAllocation,
    PlatformState,
    ProcessAllocation,
    RegionDeltaOp,
    RegionJournal,
    fingerprint_digest,
)
from tests.harness import build_two_region_platform, two_region_partition


@pytest.fixture()
def world():
    platform = build_two_region_platform()
    partition = two_region_partition(platform)
    state = PlatformState(platform)
    return platform, partition, state


def _commit(state, journal_region, application, tile):
    """Allocate one process and journal the commit, pipeline-style."""
    record = ProcessAllocation(application, f"p_{application}_{tile}", tile)
    state.allocate_process(record)
    state.journal_mapping_commit(application, (record,), ())
    return record


class TestJournalWatermarks:
    def test_fresh_journal_bases_on_the_current_fingerprint(self, world):
        platform, partition, state = world
        region = next(iter(partition))
        _commit(state, region, "early", region.processing_tile_names()[0])
        journal = state.region_journal(region)
        assert journal.base_seq == 0
        assert journal.tip_seq == 0
        assert journal.base_fingerprint == fingerprint_digest(region.fingerprint(state))
        # Get-or-create: a second call returns the same journal unchanged.
        assert state.region_journal(region) is journal

    def test_ops_since_bridges_any_unevicted_watermark(self, world):
        platform, partition, state = world
        region = next(iter(partition))
        journal = state.region_journal(region)
        tile = region.processing_tile_names()[0]
        marks = [(journal.tip_seq, journal.tip_fingerprint)]
        for i in range(4):
            _commit(state, region, f"app{i}", tile)
            marks.append((journal.tip_seq, journal.tip_fingerprint))
            state.release_application(f"app{i}")
            state.journal_release(f"app{i}", (region.name,))
            marks.append((journal.tip_seq, journal.tip_fingerprint))
        for seq, fingerprint in marks:
            ops = journal.ops_since(seq, fingerprint)
            assert ops is not None
            assert len(ops) == journal.tip_seq - seq
            assert [op.seq for op in ops] == list(range(seq + 1, journal.tip_seq + 1))
        # At-tip watermark bridges with an empty chain.
        assert journal.ops_since(journal.tip_seq, journal.tip_fingerprint) == ()

    def test_wrong_fingerprint_or_alien_seq_is_unbridgeable(self, world):
        platform, partition, state = world
        region = next(iter(partition))
        journal = state.region_journal(region)
        _commit(state, region, "one", region.processing_tile_names()[0])
        assert journal.ops_since(0, b"not-the-base") is None
        assert journal.ops_since(journal.tip_seq, b"stale") is None
        assert journal.ops_since(journal.tip_seq + 1, journal.tip_fingerprint) is None
        assert journal.ops_since(-1, journal.base_fingerprint) is None

    def test_eviction_advances_the_base_and_is_counted(self, world):
        platform, partition, state = world
        region = next(iter(partition))
        journal = state.region_journal(region, capacity=2)
        tile = region.processing_tile_names()[0]
        stale_mark = (journal.tip_seq, journal.tip_fingerprint)
        for i in range(3):  # 3 commit+release pairs = 6 ops through a 2-op window
            _commit(state, region, f"evict{i}", tile)
            state.release_application(f"evict{i}")
            state.journal_release(f"evict{i}", (region.name,))
        assert journal.evictions == 4
        assert journal.base_seq == 4
        assert journal.tip_seq == 6
        assert journal.ops_since(*stale_mark) is None  # fell off the window
        assert journal.ops_since(journal.base_seq, journal.base_fingerprint) is not None

    def test_reset_rebases_monotonically(self, world):
        platform, partition, state = world
        region = next(iter(partition))
        journal = state.region_journal(region)
        _commit(state, region, "pre", region.processing_tile_names()[0])
        tip_before = journal.tip_seq
        mark = (journal.tip_seq, journal.tip_fingerprint)
        journal.reset(b"rebased")
        assert journal.resets == 1
        assert journal.base_seq == tip_before  # seqs never reuse
        assert journal.tip_seq == tip_before
        assert journal.base_fingerprint == b"rebased"
        # The pre-reset watermark cannot alias the rebased chain.
        assert journal.ops_since(*mark) is None

    def test_capacity_floor_is_enforced(self, world):
        platform, partition, state = world
        region = next(iter(partition))
        with pytest.raises(PlatformError, match="capacity"):
            RegionJournal(region, base_fingerprint=b"", capacity=0)


class TestJournalRouting:
    def test_commit_lands_only_in_covering_journals(self, world):
        platform, partition, state = world
        left, right = list(partition)
        left_journal = state.region_journal(left)
        right_journal = state.region_journal(right)
        _commit(state, left, "lefty", left.processing_tile_names()[0])
        assert left_journal.tip_seq == 1
        assert right_journal.tip_seq == 0

    def test_release_broadcast_and_targeted(self, world):
        platform, partition, state = world
        left, right = list(partition)
        left_journal = state.region_journal(left)
        right_journal = state.region_journal(right)
        _commit(state, left, "tenant", left.processing_tile_names()[0])
        state.release_application("tenant")
        state.journal_release("tenant", None)  # broadcast
        assert left_journal.tip_seq == 2
        assert right_journal.tip_seq == 1  # release op even without records
        _commit(state, left, "tenant2", left.processing_tile_names()[0])
        state.release_application("tenant2")
        state.journal_release("tenant2", (left.name,))  # targeted
        assert left_journal.tip_seq == 4
        assert right_journal.tip_seq == 1

    def test_journalling_without_journals_is_free(self, world):
        platform, partition, state = world
        region = next(iter(partition))
        record = ProcessAllocation("solo", "p0", region.processing_tile_names()[0])
        state.allocate_process(record)
        state.journal_mapping_commit("solo", (record,), ())
        state.journal_release("solo", None)
        assert state.region_journals == {}


class TestReplayValidation:
    def _chain(self, state, region, count=3):
        journal = state.region_journal(region)
        tiles = region.processing_tile_names()
        mark = (journal.tip_seq, journal.tip_fingerprint)
        for i in range(count):
            _commit(state, region, f"chain{i}", tiles[i % len(tiles)])
        ops = journal.ops_since(*mark)
        assert ops is not None and len(ops) == count
        return journal, mark, ops

    def test_replay_reaches_the_tip_bit_identically(self, world):
        platform, partition, state = world
        region = next(iter(partition))
        journal, mark, ops = self._chain(state, region)
        worker = PlatformState(platform)
        last = worker.replay_region_ops(
            ops,
            tuple(region.tile_names),
            tuple(region.link_names),
            expected_seq=mark[0] + 1,
        )
        assert last == journal.tip_seq
        assert region.fingerprint(worker) == region.fingerprint(state)

    def test_gap_in_the_chain_raises(self, world):
        platform, partition, state = world
        region = next(iter(partition))
        _, mark, ops = self._chain(state, region)
        worker = PlatformState(platform)
        with pytest.raises(PlatformError, match="gap or out-of-order"):
            worker.replay_region_ops(
                ops[:1] + ops[2:],
                tuple(region.tile_names),
                tuple(region.link_names),
                expected_seq=mark[0] + 1,
            )

    def test_out_of_order_chain_raises(self, world):
        platform, partition, state = world
        region = next(iter(partition))
        _, mark, ops = self._chain(state, region)
        worker = PlatformState(platform)
        with pytest.raises(PlatformError, match="gap or out-of-order"):
            worker.replay_region_ops(
                (ops[1], ops[0], ops[2]),
                tuple(region.tile_names),
                tuple(region.link_names),
                expected_seq=mark[0] + 1,
            )

    def test_wrong_start_seq_raises(self, world):
        platform, partition, state = world
        region = next(iter(partition))
        _, mark, ops = self._chain(state, region)
        worker = PlatformState(platform)
        with pytest.raises(PlatformError, match="gap or out-of-order"):
            worker.replay_region_ops(
                ops[1:],
                tuple(region.tile_names),
                tuple(region.link_names),
                expected_seq=mark[0] + 1,
            )

    def test_fingerprint_divergence_raises(self, world):
        """Replaying onto the wrong base state diverges at the first op's
        target check — the worker must resync, not decide."""
        platform, partition, state = world
        region = next(iter(partition))
        _, mark, ops = self._chain(state, region)
        worker = PlatformState(platform)
        # Poison the worker state: an extra allocation the engine never saw.
        worker.allocate_process(
            ProcessAllocation("poison", "px", region.processing_tile_names()[-1])
        )
        with pytest.raises(PlatformError, match="diverged"):
            worker.replay_region_ops(
                ops,
                tuple(region.tile_names),
                tuple(region.link_names),
                expected_seq=mark[0] + 1,
            )

    def test_unknown_op_kind_raises(self, world):
        platform, partition, state = world
        region = next(iter(partition))
        worker = PlatformState(platform)
        bogus = RegionDeltaOp(1, "compact", "x", None, b"")
        with pytest.raises(PlatformError, match="unknown region delta op"):
            worker.replay_region_ops(
                (bogus,),
                tuple(region.tile_names),
                tuple(region.link_names),
                expected_seq=1,
            )

    def test_release_replay_resums_identically(self, world):
        """Interleaved commit/release chains replay bit-identically — the
        release op re-sums survivors exactly like the engine did."""
        platform, partition, state = world
        region = next(iter(partition))
        journal = state.region_journal(region)
        tiles = region.processing_tile_names()
        links = list(region.link_names)
        mark = (journal.tip_seq, journal.tip_fingerprint)
        worker = PlatformState(platform)
        for i, app in enumerate(["a", "b", "a"]):
            record = ProcessAllocation(
                app, f"rp{i}", tiles[i % len(tiles)], memory_bytes=128 * (i + 1),
                compute_cycles_per_iteration=3.7 * i,
            )
            state.allocate_process(record)
            link = LinkAllocation(app, f"rc{i}", links[i % len(links)], 1e6 * (i + 1))
            state.allocate_link(link)
            state.journal_mapping_commit(app, (record,), (link,))
        state.release_application("a")
        state.journal_release("a", (region.name,))
        _commit(state, region, "c", tiles[0])  # re-fills a freed slot post-release
        ops = journal.ops_since(*mark)
        worker.replay_region_ops(
            ops,
            tuple(region.tile_names),
            tuple(region.link_names),
            expected_seq=mark[0] + 1,
        )
        assert region.fingerprint(worker) == region.fingerprint(state)
        assert "a" not in worker.applications()
