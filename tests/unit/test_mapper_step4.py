"""Step 4: mapped-CSDF construction and QoS feasibility."""

import pytest

from repro.csdf.repetition import is_consistent, repetition_vector
from repro.kpn.qos import QoSConstraints
from repro.kpn.als import ApplicationLevelSpec
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.csdf_construction import build_mapped_csdf, consumer_buffer_edges
from repro.spatialmapper.feedback import FeedbackKind
from repro.spatialmapper.step1_implementation import select_implementations
from repro.spatialmapper.step2_tile_assignment import refine_tile_assignment
from repro.spatialmapper.step3_routing import route_channels
from repro.spatialmapper.step4_feasibility import check_feasibility
from repro.workloads import hiperlan2


@pytest.fixture()
def routed(case_study):
    als, platform, library = case_study
    step1 = select_implementations(als, platform, library)
    step2 = refine_tile_assignment(step1.mapping, als, platform)
    step3 = route_channels(step2.mapping, als, platform)
    assert step3.succeeded
    return als, platform, library, step3.mapping


class TestMappedCSDFConstruction:
    def test_actor_set(self, routed):
        als, platform, library, mapping = routed
        graph = build_mapped_csdf(als, mapping, platform, library)
        names = set(graph.actor_names)
        assert {"adc", "prefix_removal", "freq_offset_correction", "inverse_ofdm",
                "remainder", "sink"} <= names
        assert "ctrl" not in names

    def test_one_router_actor_per_hop(self, routed):
        als, platform, library, mapping = routed
        graph = build_mapped_csdf(als, mapping, platform, library)
        routers = graph.actors_with_role("router")
        assert len(routers) == sum(route.hops for route in mapping.routes)

    def test_router_actor_latency_is_4_cycles(self, routed):
        als, platform, library, mapping = routed
        graph = build_mapped_csdf(als, mapping, platform, library)
        for actor in graph.actors_with_role("router"):
            assert actor.wcet_cycles == (4.0,)
            assert actor.execution_times_ns == (40.0,)

    def test_graph_is_rate_consistent(self, routed):
        als, platform, library, mapping = routed
        graph = build_mapped_csdf(als, mapping, platform, library)
        assert is_consistent(graph)

    def test_repetition_counts_match_token_volumes(self, routed):
        als, platform, library, mapping = routed
        graph = build_mapped_csdf(als, mapping, platform, library)
        repetitions = repetition_vector(graph)
        assert repetitions["adc"] == 1
        assert repetitions["sink"] == 1
        assert repetitions["prefix_removal"] == 18
        # Routers on the adc->pfx channel transport 80 tokens one by one.
        adc_routers = [a.name for a in graph.actors_with_role("router")
                       if a.metadata.get("channel") == "c_adc_pfx"]
        for name in adc_routers:
            assert repetitions[name] == 80

    def test_process_actor_timing_uses_tile_frequency(self, routed):
        als, platform, library, mapping = routed
        graph = build_mapped_csdf(als, mapping, platform, library)
        pfx_tile = platform.tile(mapping.tile_of("prefix_removal"))
        actor = graph.actor("prefix_removal")
        expected_ns = 1e9 / pfx_tile.frequency_hz
        assert actor.execution_times_ns.at(0) == pytest.approx(expected_ns)

    def test_consumer_buffer_edges_cover_all_channels(self, routed):
        als, platform, library, mapping = routed
        graph = build_mapped_csdf(als, mapping, platform, library)
        buffers = consumer_buffer_edges(graph)
        assert set(buffers.keys()) == {c.name for c in als.kpn.data_channels()}

    def test_unrouted_channel_rejected(self, case_study):
        als, platform, library = case_study
        from repro.exceptions import MappingError

        step1 = select_implementations(als, platform, library)
        with pytest.raises(MappingError):
            build_mapped_csdf(als, step1.mapping, platform, library)


class TestFeasibility:
    def test_paper_mapping_is_feasible(self, routed):
        als, platform, library, mapping = routed
        result = check_feasibility(mapping, als, platform, library)
        assert result.feasible
        assert result.report.achieved_period_ns <= als.period_ns
        assert result.report.buffer_capacities

    def test_buffer_capacities_attached_to_mapping(self, routed):
        als, platform, library, mapping = routed
        result = check_feasibility(mapping, als, platform, library)
        assert set(result.mapping.buffer_capacities.keys()) == {
            c.name for c in als.kpn.data_channels()
        }
        assert all(capacity >= 1 for capacity in result.mapping.buffer_capacities.values())

    def test_too_tight_period_is_infeasible(self, routed):
        als, platform, library, mapping = routed
        tight = ApplicationLevelSpec(
            kpn=als.kpn, qos=QoSConstraints(period_ns=100.0), name=als.name
        )
        result = check_feasibility(mapping, tight, platform, library)
        assert not result.feasible
        kinds = {f.kind for f in result.feedback}
        assert FeedbackKind.THROUGHPUT_VIOLATED in kinds

    def test_throughput_feedback_names_a_bottleneck(self, routed):
        als, platform, library, mapping = routed
        tight = ApplicationLevelSpec(
            kpn=als.kpn, qos=QoSConstraints(period_ns=100.0), name=als.name
        )
        result = check_feasibility(mapping, tight, platform, library)
        feedback = result.feedback[0]
        assert feedback.culprit_process in {p.name for p in als.kpn.mappable_processes()}

    def test_generous_latency_bound_is_satisfied(self, routed):
        als, platform, library, mapping = routed
        relaxed = ApplicationLevelSpec(
            kpn=als.kpn,
            qos=QoSConstraints(period_ns=als.period_ns, max_latency_ns=1e6),
            name=als.name,
        )
        result = check_feasibility(mapping, relaxed, platform, library)
        assert result.feasible
        assert result.report.latency_ns is not None
        assert result.report.latency_ns <= 1e6

    def test_impossible_latency_bound_is_violated(self, routed):
        als, platform, library, mapping = routed
        strict = ApplicationLevelSpec(
            kpn=als.kpn,
            qos=QoSConstraints(period_ns=als.period_ns, max_latency_ns=10.0),
            name=als.name,
        )
        result = check_feasibility(mapping, strict, platform, library)
        assert not result.feasible
        assert any(f.kind is FeedbackKind.LATENCY_VIOLATED for f in result.feedback)

    def test_buffer_overflow_detected_on_tiny_tiles(self, case_study):
        als, _, library = case_study
        tiny_platform = hiperlan2.build_mpsoc(montium_memory_bytes=8200)
        step1 = select_implementations(als, tiny_platform, library)
        step2 = refine_tile_assignment(step1.mapping, als, tiny_platform)
        step3 = route_channels(step2.mapping, als, tiny_platform)
        result = check_feasibility(step3.mapping, als, tiny_platform, library)
        assert not result.feasible
        assert any(f.kind is FeedbackKind.BUFFER_OVERFLOW for f in result.feedback)

    def test_minimize_buffers_option_gives_no_larger_capacities(self, routed):
        als, platform, library, mapping = routed
        default = check_feasibility(mapping, als, platform, library)
        minimized = check_feasibility(
            mapping, als, platform, library, config=MapperConfig(minimize_buffers=True,
                                                                 analysis_iterations=4)
        )
        assert minimized.feasible
        for channel, capacity in minimized.mapping.buffer_capacities.items():
            assert capacity <= default.mapping.buffer_capacities[channel]
