"""The analysis-budget subsystem: fingerprints, cache, budgets, engine.

These tests pin the decision-identity contract of
:mod:`repro.csdf.analysis.budget`: with unlimited budgets the engine returns
exactly what the uncached analyses return, cache hits replay prior answers
(including deadlocks), and a finite budget degrades the buffer minimisation
gracefully — never below the sufficient capacities.
"""

import pytest

from repro.csdf.analysis.budget import (
    AnalysisBudget,
    AnalysisEngine,
    SimulationCache,
)
from repro.csdf.analysis.buffers import (
    apply_buffer_capacities,
    minimize_buffer_capacities,
    sufficient_buffer_capacities,
)
from repro.csdf.analysis.simulation import simulate
from repro.csdf.analysis.throughput import is_period_sustainable, minimal_period_ns
from repro.csdf.builder import CSDFBuilder
from repro.exceptions import DeadlockError
from repro.spatialmapper.config import MapperConfig


def deadlocked_graph():
    """A two-actor cycle with no initial tokens: deadlocks immediately."""
    return (
        CSDFBuilder("deadlock")
        .actor("a", [1.0])
        .actor("b", [1.0])
        .edge("a", "b", production=[1], consumption=[1])
        .edge("b", "a", production=[1], consumption=[1])
        .build()
    )


class TestStructuralFingerprint:
    def test_fingerprint_ignores_names(self, simple_chain_csdf):
        renamed = (
            CSDFBuilder("other_name")
            .actor("x", [10.0])
            .actor("y", [20.0])
            .actor("z", [5.0])
            .edge("x", "y", production=[1], consumption=[1])
            .edge("y", "z", production=[1], consumption=[1])
            .build()
        )
        assert renamed.structural_fingerprint() == simple_chain_csdf.structural_fingerprint()

    def test_fingerprint_distinguishes_rates(self, simple_chain_csdf):
        different = (
            CSDFBuilder("chain")
            .actor("a", [10.0])
            .actor("b", [20.0])
            .actor("c", [5.0])
            .edge("a", "b", production=[2], consumption=[1])
            .edge("b", "c", production=[1], consumption=[1])
            .build()
        )
        assert different.structural_fingerprint() != simple_chain_csdf.structural_fingerprint()

    def test_fingerprint_excludes_capacities(self, simple_chain_csdf):
        bounded = apply_buffer_capacities(
            simple_chain_csdf, {e.name: 4 for e in simple_chain_csdf.edges}
        )
        assert bounded.structural_fingerprint() == simple_chain_csdf.structural_fingerprint()
        assert bounded.capacity_vector() != simple_chain_csdf.capacity_vector()

    def test_capacity_only_replace_preserves_cached_fingerprint(self, simple_chain_csdf):
        bounded = apply_buffer_capacities(
            simple_chain_csdf, {e.name: 4 for e in simple_chain_csdf.edges}
        )
        before = bounded.structural_fingerprint()
        edge = bounded.edges[0]
        bounded.replace_edge(edge.with_capacity(2))
        assert bounded._fingerprint is not None  # cache survived the swap
        assert bounded.structural_fingerprint() == before

    def test_copy_propagates_fingerprint(self, simple_chain_csdf):
        fingerprint = simple_chain_csdf.structural_fingerprint()
        clone = simple_chain_csdf.copy("clone")
        assert clone._fingerprint == fingerprint
        assert clone.structural_fingerprint() == fingerprint


class TestAnalysisBudget:
    def test_unlimited_budget_never_exhausts(self):
        budget = AnalysisBudget()
        budget.charge_events(10**9)
        budget.charge_probe()
        assert not budget.exhausted

    def test_event_ceiling(self):
        budget = AnalysisBudget(max_events=10)
        budget.charge_events(9)
        assert not budget.exhausted
        budget.charge_events(1)
        assert budget.exhausted

    def test_probe_ceiling(self):
        budget = AnalysisBudget(max_probes=2)
        budget.charge_probe()
        assert not budget.exhausted
        budget.charge_probe()
        assert budget.exhausted

    def test_invalid_ceilings_rejected(self):
        with pytest.raises(ValueError):
            AnalysisBudget(max_events=0)
        with pytest.raises(ValueError):
            AnalysisBudget(max_probes=-1)


class TestSimulationCache:
    def test_lru_eviction(self):
        cache = SimulationCache(maxsize=2)
        cache.store(("a",), 1, cost=5)
        cache.store(("b",), 2, cost=5)
        cache.lookup(("a",))  # refresh "a"
        cache.store(("c",), 3, cost=5)
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)).value == 1
        assert cache.stats.evictions == 1

    def test_hit_returns_stored_cost(self):
        cache = SimulationCache()
        cache.store(("k",), "v", cost=42)
        entry = cache.lookup(("k",))
        assert entry.value == "v"
        assert entry.cost == 42
        assert cache.stats.hit_rate == pytest.approx(1.0)


class TestAnalysisEngine:
    def test_matches_uncached_analyses(self, simple_chain_csdf):
        engine = AnalysisEngine()
        assert engine.minimal_period_ns(simple_chain_csdf, iterations=6) == pytest.approx(
            minimal_period_ns(simple_chain_csdf, iterations=6)
        )
        assert engine.is_period_sustainable(
            simple_chain_csdf, 25.0, iterations=6
        ) == is_period_sustainable(simple_chain_csdf, 25.0, iterations=6)
        assert engine.sufficient_buffer_capacities(
            simple_chain_csdf, 25.0, iterations=6
        ) == sufficient_buffer_capacities(simple_chain_csdf, 25.0, iterations=6)

    def test_second_call_is_a_cache_hit(self, multirate_csdf):
        engine = AnalysisEngine()
        first = engine.sufficient_buffer_capacities(multirate_csdf, 20.0, iterations=6)
        after_first = engine.snapshot()
        second = engine.sufficient_buffer_capacities(multirate_csdf, 20.0, iterations=6)
        after_second = engine.snapshot()
        assert second == first
        assert after_second["simulations_run"] == after_first["simulations_run"]
        assert after_second["cache_hits"] == after_first["cache_hits"] + 1

    def test_renamed_graph_shares_cache_entry(self, simple_chain_csdf):
        engine = AnalysisEngine()
        engine.is_period_sustainable(simple_chain_csdf, 25.0, iterations=6)
        renamed = (
            CSDFBuilder("twin")
            .actor("x", [10.0])
            .actor("y", [20.0])
            .actor("z", [5.0])
            .edge("x", "y", production=[1], consumption=[1])
            .edge("y", "z", production=[1], consumption=[1])
            .build()
        )
        before = engine.snapshot()
        engine.is_period_sustainable(renamed, 25.0, iterations=6)
        after = engine.snapshot()
        assert after["simulations_run"] == before["simulations_run"]
        assert after["cache_hits"] == before["cache_hits"] + 1

    def test_deadlock_is_cached_and_reraised(self):
        engine = AnalysisEngine()
        graph = deadlocked_graph()
        with pytest.raises(DeadlockError):
            engine.minimal_period_ns(graph, iterations=4)
        before = engine.snapshot()
        with pytest.raises(DeadlockError):
            engine.minimal_period_ns(graph, iterations=4)
        after = engine.snapshot()
        assert after["simulations_run"] == before["simulations_run"]
        assert after["cache_hits"] == before["cache_hits"] + 1

    def test_cache_disabled_with_zero_size(self, simple_chain_csdf):
        engine = AnalysisEngine(cache_size=0)
        engine.is_period_sustainable(simple_chain_csdf, 25.0, iterations=6)
        engine.is_period_sustainable(simple_chain_csdf, 25.0, iterations=6)
        snapshot = engine.snapshot()
        assert snapshot["simulations_run"] == 2
        assert snapshot["cache_hits"] == 0

    def test_minimize_matches_functional_gain_order(self, multirate_csdf):
        engine = AnalysisEngine()
        engine_result = engine.minimize_buffer_capacities(multirate_csdf, 20.0, iterations=6)
        functional = minimize_buffer_capacities(
            multirate_csdf, 20.0, iterations=6, order="gain"
        )
        assert engine_result == functional

    def test_exhausted_budget_degrades_to_sufficient(self, multirate_csdf):
        engine = AnalysisEngine(probe_budget=1)
        sufficient = sufficient_buffer_capacities(multirate_csdf, 20.0, iterations=6)
        degraded = engine.minimize_buffer_capacities(multirate_csdf, 20.0, iterations=6)
        assert engine.snapshot()["budget_exhausted"] == 1
        for edge_name, capacity in degraded.items():
            assert capacity <= sufficient[edge_name]
        bounded = apply_buffer_capacities(multirate_csdf, degraded)
        assert is_period_sustainable(bounded, 20.0, iterations=6)

    def test_budget_trajectory_is_cache_warmth_independent(self, multirate_csdf):
        # The same finite budget must produce the same capacities whether the
        # verdict cache is cold or warm: hits charge their stored cost.
        cold = AnalysisEngine(event_budget=200)
        cold_result = cold.minimize_buffer_capacities(multirate_csdf, 20.0, iterations=6)
        warm = AnalysisEngine(event_budget=200)
        warm.minimize_buffer_capacities(multirate_csdf, 20.0, iterations=6)
        warm_result = warm.minimize_buffer_capacities(multirate_csdf, 20.0, iterations=6)
        assert warm_result == cold_result

    def test_from_config_reads_the_analysis_knobs(self):
        config = MapperConfig(
            analysis_cache_size=7,
            analysis_early_exit=False,
            analysis_event_budget=100,
            analysis_probe_budget=3,
        )
        engine = AnalysisEngine.from_config(config)
        assert engine.cache.maxsize == 7
        assert engine.early_exit is False
        assert engine.event_budget == 100
        assert engine.probe_budget == 3


class TestEarlyExitSimulation:
    def test_unsustainable_period_aborts_early(self, simple_chain_csdf):
        full = AnalysisBudget()
        is_period_sustainable(
            simple_chain_csdf, 15.0, iterations=10, early_exit=False, budget=full
        )
        early = AnalysisBudget()
        verdict = is_period_sustainable(
            simple_chain_csdf, 15.0, iterations=10, early_exit=True, budget=early
        )
        assert verdict is False
        assert early.events_used < full.events_used

    def test_cycle_exit_preserves_capacities(self, multirate_csdf):
        full = sufficient_buffer_capacities(multirate_csdf, 20.0, iterations=12)
        early = sufficient_buffer_capacities(
            multirate_csdf, 20.0, iterations=12, early_exit=True
        )
        assert early == full

    def test_aborted_result_reports_reason(self, simple_chain_csdf):
        result = simulate(simple_chain_csdf, iterations=12, cycle_exit=True)
        assert result.simulated_events > 0
        if result.aborted:
            assert result.abort_reason == "cycle"
