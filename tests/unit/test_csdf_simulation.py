"""Self-timed simulation of CSDF graphs."""

import pytest

from repro.csdf.builder import CSDFBuilder
from repro.csdf.analysis.simulation import SelfTimedSimulator, simulate
from repro.exceptions import DeadlockError


class TestBasicExecution:
    def test_chain_executes_all_firings(self, simple_chain_csdf):
        result = simulate(simple_chain_csdf, iterations=3)
        assert not result.deadlocked
        assert result.completed_iterations == 3
        for actor in ("a", "b", "c"):
            assert len(result.firings_of(actor)) == 3

    def test_pipeline_timing_first_iteration(self, simple_chain_csdf):
        result = simulate(simple_chain_csdf, iterations=1)
        a = result.firings_of("a")[0]
        b = result.firings_of("b")[0]
        c = result.firings_of("c")[0]
        assert a.start_ns == 0.0 and a.finish_ns == 10.0
        assert b.start_ns == 10.0 and b.finish_ns == 30.0
        assert c.start_ns == 30.0 and c.finish_ns == 35.0

    def test_steady_state_period_is_bottleneck(self, simple_chain_csdf):
        result = simulate(simple_chain_csdf, iterations=10)
        # The 20 ns actor dominates the pipeline.
        assert result.steady_state_period_ns() == pytest.approx(20.0, rel=0.05)

    def test_multirate_firing_counts(self, multirate_csdf):
        result = simulate(multirate_csdf, iterations=2)
        assert len(result.firings_of("a")) == 2
        assert len(result.firings_of("b")) == 4
        assert len(result.firings_of("c")) == 6

    def test_iteration_requires_positive_count(self, simple_chain_csdf):
        with pytest.raises(ValueError):
            SelfTimedSimulator(simple_chain_csdf, iterations=0)

    def test_max_occupancy_recorded(self, simple_chain_csdf):
        result = simulate(simple_chain_csdf, iterations=5)
        # "a" finishes every 10 ns while "b" takes 20 ns, so tokens pile up on
        # the first edge but never on the second.
        assert result.max_occupancy["e1_a_b"] >= 2
        assert result.max_occupancy["e2_b_c"] >= 1


class TestInitialTokensAndCycles:
    def test_cycle_with_initial_token_runs(self):
        graph = (
            CSDFBuilder("loop")
            .actor("a", [5.0])
            .actor("b", [5.0])
            .edge("a", "b", production=[1], consumption=[1])
            .edge("b", "a", production=[1], consumption=[1], initial_tokens=1)
            .build()
        )
        result = simulate(graph, iterations=4)
        assert not result.deadlocked
        assert result.completed_iterations == 4
        # With a single token circulating, a and b alternate strictly.
        assert result.steady_state_period_ns() == pytest.approx(10.0)

    def test_cycle_without_initial_token_deadlocks(self):
        graph = (
            CSDFBuilder("deadlock")
            .actor("a", [5.0])
            .actor("b", [5.0])
            .edge("a", "b", production=[1], consumption=[1])
            .edge("b", "a", production=[1], consumption=[1])
            .build()
        )
        result = simulate(graph, iterations=1)
        assert result.deadlocked
        assert result.completed_iterations == 0
        with pytest.raises(DeadlockError):
            result.steady_state_period_ns()


class TestBoundedBuffers:
    def test_capacity_one_serialises_producer_and_consumer(self):
        graph = (
            CSDFBuilder("bounded")
            .actor("fast", [1.0])
            .actor("slow", [10.0])
            .edge("fast", "slow", production=[1], consumption=[1], capacity=1)
            .build()
        )
        result = simulate(graph, iterations=5)
        assert not result.deadlocked
        assert result.max_occupancy["e1_fast_slow"] <= 1
        # The fast producer is throttled by back-pressure to the slow consumer.
        assert result.steady_state_period_ns() == pytest.approx(10.0, rel=0.1)

    def test_larger_capacity_reduces_blocking(self):
        def run(capacity):
            graph = (
                CSDFBuilder("bounded")
                .actor("fast", [1.0])
                .actor("slow", [10.0])
                .edge("fast", "slow", production=[1], consumption=[1], capacity=capacity)
                .build()
            )
            return simulate(graph, iterations=5)

        small = run(1)
        large = run(8)
        first_fast_small = small.firings_of("fast")[2].start_ns
        first_fast_large = large.firings_of("fast")[2].start_ns
        assert first_fast_large < first_fast_small

    def test_insufficient_capacity_for_burst_deadlocks(self):
        graph = (
            CSDFBuilder("too_small")
            .actor("burst", [1.0])
            .actor("sink", [1.0])
            .edge("burst", "sink", production=[4], consumption=[4], capacity=2)
            .build()
        )
        result = simulate(graph, iterations=1)
        assert result.deadlocked


class TestPeriodicSources:
    def test_source_respects_period(self, simple_chain_csdf):
        result = simulate(simple_chain_csdf, iterations=4, source_period_ns=100.0)
        starts = [f.start_ns for f in result.firings_of("a")]
        assert starts == [0.0, 100.0, 200.0, 300.0]

    def test_period_slower_than_pipeline_sets_throughput(self, simple_chain_csdf):
        result = simulate(simple_chain_csdf, iterations=6, source_period_ns=50.0)
        assert result.steady_state_period_ns() == pytest.approx(50.0, rel=0.05)

    def test_unknown_periodic_actor_rejected(self, simple_chain_csdf):
        with pytest.raises(ValueError):
            SelfTimedSimulator(
                simple_chain_csdf, 2, source_period_ns=10.0, periodic_actors=("zz",)
            )

    def test_latency_measurement(self, simple_chain_csdf):
        result = simulate(simple_chain_csdf, iterations=3, source_period_ns=100.0)
        assert result.iteration_latency_ns("a", "c", 0) == pytest.approx(35.0)
