"""Self-timed simulation of CSDF graphs."""

import pytest

from repro.csdf.builder import CSDFBuilder
from repro.csdf.analysis.simulation import SelfTimedSimulator, simulate
from repro.exceptions import DeadlockError


class TestBasicExecution:
    def test_chain_executes_all_firings(self, simple_chain_csdf):
        result = simulate(simple_chain_csdf, iterations=3)
        assert not result.deadlocked
        assert result.completed_iterations == 3
        for actor in ("a", "b", "c"):
            assert len(result.firings_of(actor)) == 3

    def test_pipeline_timing_first_iteration(self, simple_chain_csdf):
        result = simulate(simple_chain_csdf, iterations=1)
        a = result.firings_of("a")[0]
        b = result.firings_of("b")[0]
        c = result.firings_of("c")[0]
        assert a.start_ns == 0.0 and a.finish_ns == 10.0
        assert b.start_ns == 10.0 and b.finish_ns == 30.0
        assert c.start_ns == 30.0 and c.finish_ns == 35.0

    def test_steady_state_period_is_bottleneck(self, simple_chain_csdf):
        result = simulate(simple_chain_csdf, iterations=10)
        # The 20 ns actor dominates the pipeline.
        assert result.steady_state_period_ns() == pytest.approx(20.0, rel=0.05)

    def test_multirate_firing_counts(self, multirate_csdf):
        result = simulate(multirate_csdf, iterations=2)
        assert len(result.firings_of("a")) == 2
        assert len(result.firings_of("b")) == 4
        assert len(result.firings_of("c")) == 6

    def test_iteration_requires_positive_count(self, simple_chain_csdf):
        with pytest.raises(ValueError):
            SelfTimedSimulator(simple_chain_csdf, iterations=0)

    def test_max_occupancy_recorded(self, simple_chain_csdf):
        result = simulate(simple_chain_csdf, iterations=5)
        # "a" finishes every 10 ns while "b" takes 20 ns, so tokens pile up on
        # the first edge but never on the second.
        assert result.max_occupancy["e1_a_b"] >= 2
        assert result.max_occupancy["e2_b_c"] >= 1


class TestInitialTokensAndCycles:
    def test_cycle_with_initial_token_runs(self):
        graph = (
            CSDFBuilder("loop")
            .actor("a", [5.0])
            .actor("b", [5.0])
            .edge("a", "b", production=[1], consumption=[1])
            .edge("b", "a", production=[1], consumption=[1], initial_tokens=1)
            .build()
        )
        result = simulate(graph, iterations=4)
        assert not result.deadlocked
        assert result.completed_iterations == 4
        # With a single token circulating, a and b alternate strictly.
        assert result.steady_state_period_ns() == pytest.approx(10.0)

    def test_cycle_without_initial_token_deadlocks(self):
        graph = (
            CSDFBuilder("deadlock")
            .actor("a", [5.0])
            .actor("b", [5.0])
            .edge("a", "b", production=[1], consumption=[1])
            .edge("b", "a", production=[1], consumption=[1])
            .build()
        )
        result = simulate(graph, iterations=1)
        assert result.deadlocked
        assert result.completed_iterations == 0
        with pytest.raises(DeadlockError):
            result.steady_state_period_ns()


class TestBoundedBuffers:
    def test_capacity_one_serialises_producer_and_consumer(self):
        graph = (
            CSDFBuilder("bounded")
            .actor("fast", [1.0])
            .actor("slow", [10.0])
            .edge("fast", "slow", production=[1], consumption=[1], capacity=1)
            .build()
        )
        result = simulate(graph, iterations=5)
        assert not result.deadlocked
        assert result.max_occupancy["e1_fast_slow"] <= 1
        # The fast producer is throttled by back-pressure to the slow consumer.
        assert result.steady_state_period_ns() == pytest.approx(10.0, rel=0.1)

    def test_larger_capacity_reduces_blocking(self):
        def run(capacity):
            graph = (
                CSDFBuilder("bounded")
                .actor("fast", [1.0])
                .actor("slow", [10.0])
                .edge("fast", "slow", production=[1], consumption=[1], capacity=capacity)
                .build()
            )
            return simulate(graph, iterations=5)

        small = run(1)
        large = run(8)
        first_fast_small = small.firings_of("fast")[2].start_ns
        first_fast_large = large.firings_of("fast")[2].start_ns
        assert first_fast_large < first_fast_small

    def test_insufficient_capacity_for_burst_deadlocks(self):
        graph = (
            CSDFBuilder("too_small")
            .actor("burst", [1.0])
            .actor("sink", [1.0])
            .edge("burst", "sink", production=[4], consumption=[4], capacity=2)
            .build()
        )
        result = simulate(graph, iterations=1)
        assert result.deadlocked


class TestPeriodicSources:
    def test_source_respects_period(self, simple_chain_csdf):
        result = simulate(simple_chain_csdf, iterations=4, source_period_ns=100.0)
        starts = [f.start_ns for f in result.firings_of("a")]
        assert starts == [0.0, 100.0, 200.0, 300.0]

    def test_period_slower_than_pipeline_sets_throughput(self, simple_chain_csdf):
        result = simulate(simple_chain_csdf, iterations=6, source_period_ns=50.0)
        assert result.steady_state_period_ns() == pytest.approx(50.0, rel=0.05)

    def test_unknown_periodic_actor_rejected(self, simple_chain_csdf):
        with pytest.raises(ValueError):
            SelfTimedSimulator(
                simple_chain_csdf, 2, source_period_ns=10.0, periodic_actors=("zz",)
            )

    def test_latency_measurement(self, simple_chain_csdf):
        result = simulate(simple_chain_csdf, iterations=3, source_period_ns=100.0)
        assert result.iteration_latency_ns("a", "c", 0) == pytest.approx(35.0)


def _naive_reference_run(graph, iterations, source_period_ns=None):
    """Reference self-timed execution using the full fixpoint readiness scan.

    This is the straightforward implementation the affected-set simulator
    must stay bit-identical to: after every event, try to start *every*
    actor in declaration order until a full pass starts nothing.
    """
    import heapq

    from repro.csdf.repetition import repetition_vector

    repetitions = repetition_vector(graph)
    names = list(graph.actor_names)
    count = len(names)
    reps = [repetitions[name] for name in names]
    target = [repetitions[name] * iterations for name in names]
    edges = list(graph.edges)
    edge_index = {edge.name: i for i, edge in enumerate(edges)}
    tokens = [edge.initial_tokens for edge in edges]
    period = source_period_ns
    periodic = [period is not None and not graph.input_edges(name) for name in names]
    phase = [0] * count
    fired = [0] * count
    busy = [False] * count
    firings = [[] for _ in range(count)]
    remaining = sum(target)
    pending, sequence, now = [], 0, 0.0

    def try_start(a):
        nonlocal sequence
        actor = graph.actor(names[a])
        if busy[a] or fired[a] >= target[a]:
            return False
        if periodic[a] and now + 1e-12 < (fired[a] // reps[a]) * period:
            return False
        p = phase[a]
        for edge in graph.input_edges(names[a]):
            if tokens[edge_index[edge.name]] + 1e-9 < edge.consumption_rates.at(p):
                return False
        for edge in graph.output_edges(names[a]):
            if edge.capacity is not None and tokens[edge_index[edge.name]] + int(
                edge.production_rates.at(p)
            ) > edge.capacity + 1e-9:
                return False
        for edge in graph.input_edges(names[a]):
            tokens[edge_index[edge.name]] -= int(edge.consumption_rates.at(p))
        busy[a] = True
        sequence += 1
        heapq.heappush(pending, (now + actor.execution_time_ns(p), sequence, a, p, now))
        return True

    def scan_all():
        started = True
        while started:
            started = False
            for a in range(count):
                if try_start(a):
                    started = True

    scan_all()
    while remaining:
        if pending:
            finish, _, a, p, start = heapq.heappop(pending)
            now = finish
            for edge in graph.output_edges(names[a]):
                tokens[edge_index[edge.name]] += int(edge.production_rates.at(p))
            firings[a].append((names[a], fired[a], p, start, finish))
            fired[a] += 1
            phase[a] = (p + 1) % graph.actor(names[a]).phases
            busy[a] = False
            remaining -= 1
            scan_all()
            continue
        if period is not None:
            releases = [
                (fired[a] // reps[a]) * period
                for a in range(count)
                if periodic[a] and fired[a] < target[a]
            ]
            if releases and min(releases) > now:
                now = min(releases)
                scan_all()
                continue
        break
    return {names[a]: firings[a] for a in range(count)}


class TestBoundedAffectedSetEquivalence:
    """The bounded-buffer fast path must match the naive full scan exactly."""

    def _compare(self, graph, iterations, source_period_ns=None):
        fast = simulate(graph, iterations=iterations, source_period_ns=source_period_ns)
        reference = _naive_reference_run(
            graph, iterations, source_period_ns=source_period_ns
        )
        for name in graph.actor_names:
            got = [
                (f.actor, f.firing_index, f.phase_index, f.start_ns, f.finish_ns)
                for f in fast.firings_of(name)
            ]
            assert got == reference[name], name

    def test_random_bounded_chains_match_reference(self):
        import random

        for seed in range(25):
            rng = random.Random(seed)
            length = rng.randint(2, 6)
            builder = CSDFBuilder(f"chain{seed}")
            for index in range(length):
                phases = rng.randint(1, 3)
                builder.actor(
                    f"a{index}", [float(rng.randint(1, 5)) for _ in range(phases)]
                )
            for index in range(length - 1):
                builder.edge(
                    f"a{index}",
                    f"a{index + 1}",
                    production=[1],
                    consumption=[1],
                    initial_tokens=rng.randint(0, 2),
                    capacity=rng.choice([None, 2, 3, 4]),
                )
            graph = builder.build()
            period = rng.choice([None, 6.0, 11.0])
            self._compare(graph, iterations=4, source_period_ns=period)

    def test_producer_wake_up_within_one_event(self):
        # With capacity 1 and one initial token, the producer is blocked on
        # back-pressure until the consumer's *start* (not finish) frees the
        # slot — the wake-up the bounded affected-set scan must deliver.
        graph = (
            CSDFBuilder("wakeup")
            .actor("fast", [1.0])
            .actor("slow", [10.0])
            .edge("fast", "slow", production=[1], consumption=[1],
                  initial_tokens=1, capacity=1)
            .build()
        )
        self._compare(graph, iterations=3)
        result = simulate(graph, iterations=3)
        # The producer's first firing starts at t=0: the consumer started at
        # t=0 too (consuming the initial token) and thereby freed the slot.
        assert result.firings_of("fast")[0].start_ns == 0.0

    def test_bounded_fork_join_matches_reference(self):
        graph = (
            CSDFBuilder("diamond")
            .actor("src", [2.0])
            .actor("up", [3.0])
            .actor("down", [5.0])
            .actor("join", [1.0])
            .edge("src", "up", production=[1], consumption=[1], capacity=2)
            .edge("src", "down", production=[1], consumption=[1], capacity=1)
            .edge("up", "join", production=[1], consumption=[1], capacity=2)
            .edge("down", "join", production=[1], consumption=[1], capacity=2)
            .build()
        )
        self._compare(graph, iterations=5)
        self._compare(graph, iterations=5, source_period_ns=12.0)

    def test_bounded_backward_edge_cycle_matches_reference(self):
        graph = (
            CSDFBuilder("credit_loop")
            .actor("producer", [2.0])
            .actor("consumer", [3.0])
            .edge("producer", "consumer", production=[1], consumption=[1], capacity=2)
            .edge("consumer", "producer", production=[1], consumption=[1],
                  initial_tokens=2, capacity=3)
            .build()
        )
        self._compare(graph, iterations=6)
