"""Processes of a KPN."""

import pytest

from repro.kpn.process import Process, ProcessKind


class TestProcessConstruction:
    def test_default_kind_is_kernel(self):
        assert Process("fft").kind is ProcessKind.KERNEL

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Process("")

    def test_source_requires_pinned_tile(self):
        with pytest.raises(ValueError):
            Process("adc", ProcessKind.SOURCE)

    def test_sink_requires_pinned_tile(self):
        with pytest.raises(ValueError):
            Process("out", ProcessKind.SINK)

    def test_kernel_must_not_be_pinned(self):
        with pytest.raises(ValueError):
            Process("fft", ProcessKind.KERNEL, pinned_tile="arm1")

    def test_source_with_tile_is_valid(self):
        process = Process("adc", ProcessKind.SOURCE, pinned_tile="adc_tile")
        assert process.pinned_tile == "adc_tile"


class TestProcessClassification:
    def test_kernel_is_mappable(self):
        assert Process("fft").is_mappable

    def test_source_is_not_mappable(self):
        assert not Process("adc", ProcessKind.SOURCE, pinned_tile="t").is_mappable

    def test_sink_is_not_mappable(self):
        assert not Process("out", ProcessKind.SINK, pinned_tile="t").is_mappable

    def test_control_is_not_mappable(self):
        # Control processes are outside the data stream (paper section 4.1).
        assert not Process("ctrl", ProcessKind.CONTROL).is_mappable

    def test_pinned_flags(self):
        assert Process("adc", ProcessKind.SOURCE, pinned_tile="t").is_pinned
        assert Process("out", ProcessKind.SINK, pinned_tile="t").is_pinned
        assert not Process("fft").is_pinned

    def test_control_is_not_data_process(self):
        assert not Process("ctrl", ProcessKind.CONTROL).is_data_process
        assert Process("fft").is_data_process

    def test_str_is_name(self):
        assert str(Process("fft")) == "fft"

    def test_processes_hashable_and_equal_by_value(self):
        assert Process("fft") == Process("fft")
        assert hash(Process("fft")) == hash(Process("fft"))
