"""Step 2: local-search refinement of the tile assignment."""

import pytest

from repro.mapping.cost import manhattan_cost
from repro.spatialmapper.config import MapperConfig, Step2Strategy
from repro.spatialmapper.feedback import ExclusionSet
from repro.spatialmapper.step1_implementation import select_implementations
from repro.spatialmapper.step2_tile_assignment import refine_tile_assignment


@pytest.fixture()
def initial(case_study):
    als, platform, library = case_study
    result = select_implementations(als, platform, library)
    assert result.succeeded
    return als, platform, library, result.mapping


class TestPaperTrace:
    def test_cost_trajectory_matches_table2(self, initial):
        als, platform, library, mapping = initial
        result = refine_tile_assignment(mapping, als, platform)
        trace = result.trace
        assert trace.initial_cost == pytest.approx(11.0)
        improving = trace.improving_prefix()
        assert [row.cost for row in improving] == [11.0, 9.0, 7.0]
        assert [row.accepted for row in improving] == [False, True, True]
        assert trace.final_cost == pytest.approx(7.0)

    def test_first_iteration_is_the_arm_swap(self, initial):
        als, platform, library, mapping = initial
        trace = refine_tile_assignment(mapping, als, platform).trace
        first = trace.iterations[0]
        assert "prefix_removal" in first.description
        assert "freq_offset_correction" in first.description
        assert first.remark == "No improvement, revert"

    def test_second_iteration_swaps_the_montiums(self, initial):
        als, platform, library, mapping = initial
        trace = refine_tile_assignment(mapping, als, platform).trace
        second = trace.iterations[1]
        assert "inverse_ofdm" in second.description
        assert "remainder" in second.description
        assert second.accepted

    def test_final_assignment_matches_paper(self, initial):
        als, platform, library, mapping = initial
        refined = refine_tile_assignment(mapping, als, platform).mapping
        assert refined.tile_of("freq_offset_correction") == "arm1"
        assert refined.tile_of("prefix_removal") == "arm2"
        assert refined.tile_of("remainder") == "montium1"
        assert refined.tile_of("inverse_ofdm") == "montium2"

    def test_refinement_never_increases_cost(self, initial):
        als, platform, library, mapping = initial
        before = manhattan_cost(mapping, als, platform)
        result = refine_tile_assignment(mapping, als, platform)
        after = manhattan_cost(result.mapping, als, platform)
        assert after <= before

    def test_adequacy_preserved_by_construction(self, initial):
        als, platform, library, mapping = initial
        refined = refine_tile_assignment(mapping, als, platform).mapping
        for assignment in refined.assignments:
            if assignment.implementation is None:
                continue
            tile_type = platform.tile(assignment.tile).type_name
            assert assignment.implementation.tile_type == tile_type


class TestStrategiesAndConfig:
    def test_best_improvement_reaches_same_cost(self, initial):
        als, platform, library, mapping = initial
        config = MapperConfig(step2_strategy=Step2Strategy.BEST_IMPROVEMENT)
        result = refine_tile_assignment(mapping, als, platform, config=config)
        assert result.final_cost == pytest.approx(7.0)

    def test_best_improvement_needs_fewer_accepted_iterations(self, initial):
        als, platform, library, mapping = initial
        first = refine_tile_assignment(mapping, als, platform)
        best = refine_tile_assignment(
            mapping, als, platform,
            config=MapperConfig(step2_strategy=Step2Strategy.BEST_IMPROVEMENT),
        )
        assert len(best.trace.iterations) <= len(first.trace.iterations)

    def test_iteration_cap_respected(self, initial):
        als, platform, library, mapping = initial
        config = MapperConfig(step2_max_iterations=1)
        result = refine_tile_assignment(mapping, als, platform, config=config)
        assert len(result.trace.iterations) <= 1

    def test_min_gain_threshold_blocks_small_improvements(self, initial):
        als, platform, library, mapping = initial
        config = MapperConfig(step2_min_gain=100.0)
        result = refine_tile_assignment(mapping, als, platform, config=config)
        # No swap improves by 100 distance units, so nothing is accepted.
        assert result.final_cost == pytest.approx(result.trace.initial_cost)

    def test_trace_can_be_disabled(self, initial):
        als, platform, library, mapping = initial
        config = MapperConfig(keep_step2_trace=False)
        result = refine_tile_assignment(mapping, als, platform, config=config)
        assert result.trace.iterations == []
        # The refinement still happens even without a trace.
        assert manhattan_cost(result.mapping, als, platform) == pytest.approx(7.0)

    def test_excluded_placement_is_never_used(self, initial):
        als, platform, library, mapping = initial
        exclusions = ExclusionSet()
        exclusions.ban_placement("prefix_removal", "arm2")
        result = refine_tile_assignment(mapping, als, platform, exclusions=exclusions)
        assert result.mapping.tile_of("prefix_removal") != "arm2"

    def test_cost_trajectory_is_monotone_over_accepted_steps(self, initial):
        als, platform, library, mapping = initial
        trace = refine_tile_assignment(mapping, als, platform).trace
        accepted_costs = [row.cost for row in trace.accepted_iterations]
        assert accepted_costs == sorted(accepted_costs, reverse=True)
