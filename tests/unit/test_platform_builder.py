"""The platform builder."""

import pytest

from repro.exceptions import PlatformError
from repro.platform.builder import PlatformBuilder


class TestPlatformBuilder:
    def test_build_requires_a_noc(self):
        with pytest.raises(PlatformError):
            PlatformBuilder("p").tile_type("ARM").build()

    def test_tile_requires_declared_type(self):
        builder = PlatformBuilder("p").mesh(2, 2)
        with pytest.raises(PlatformError):
            builder.tile("t", "ARM", (0, 0))

    def test_full_build(self, small_platform):
        assert len(small_platform) == 4
        assert small_platform.tile("gpp0").type_name == "GPP"
        assert small_platform.tile("dsp0").tile_type.frequency_hz == pytest.approx(100e6)
        assert not small_platform.tile("io0").is_processing

    def test_mesh_parameters_propagate(self):
        platform = (
            PlatformBuilder("p")
            .mesh(2, 2, link_capacity_bits_per_s=123.0, router_latency_cycles=7,
                  router_frequency_mhz=50)
            .tile_type("ARM")
            .tile("a", "ARM", (0, 0))
            .build()
        )
        link = platform.noc.link((0, 0), (1, 0))
        router = platform.noc.router((0, 0))
        assert link.capacity_bits_per_s == 123.0
        assert router.latency_cycles == 7
        assert router.frequency_hz == pytest.approx(50e6)

    def test_tile_resource_options(self):
        platform = (
            PlatformBuilder("p")
            .mesh(1, 1)
            .tile_type("ARM")
            .tile("a", "ARM", (0, 0), max_processes=3, memory_bytes=777)
            .build()
        )
        tile = platform.tile("a")
        assert tile.resources.max_processes == 3
        assert tile.resources.memory_bytes == 777

    def test_shared_routers_option(self):
        platform = (
            PlatformBuilder("p")
            .mesh(1, 1)
            .allow_shared_routers()
            .tile_type("ARM")
            .tile("a", "ARM", (0, 0))
            .tile("b", "ARM", (0, 0))
            .build()
        )
        assert len(platform.tiles_at((0, 0))) == 2

    def test_custom_noc_object(self):
        from repro.platform.topology import build_torus_noc

        platform = (
            PlatformBuilder("p")
            .noc(build_torus_noc(3, 3))
            .tile_type("ARM")
            .tile("a", "ARM", (0, 0))
            .build()
        )
        assert platform.noc.has_link((2, 0), (0, 0))
