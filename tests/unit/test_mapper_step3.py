"""Step 3: channel routing over the NoC."""

import pytest

from repro.spatialmapper.feedback import FeedbackKind
from repro.spatialmapper.step1_implementation import select_implementations
from repro.spatialmapper.step2_tile_assignment import refine_tile_assignment
from repro.spatialmapper.step3_routing import channel_throughput_bits_per_s, route_channels
from repro.workloads import hiperlan2


@pytest.fixture()
def placed(case_study):
    als, platform, library = case_study
    step1 = select_implementations(als, platform, library)
    step2 = refine_tile_assignment(step1.mapping, als, platform)
    return als, platform, library, step2.mapping


class TestRouting:
    def test_all_data_channels_routed(self, placed):
        als, platform, library, mapping = placed
        result = route_channels(mapping, als, platform)
        assert result.succeeded
        for channel in als.kpn.data_channels():
            assert result.mapping.is_routed(channel.name)

    def test_control_channels_not_routed(self, placed):
        als, platform, library, mapping = placed
        result = route_channels(mapping, als, platform)
        assert not result.mapping.is_routed("c_ctrl_rem")

    def test_route_hops_equal_manhattan_distance_on_uncongested_noc(self, placed):
        als, platform, library, mapping = placed
        result = route_channels(mapping, als, platform)
        for route in result.mapping.routes:
            expected = platform.distance(route.source_tile, route.target_tile)
            assert route.hops == expected

    def test_total_hops_match_final_manhattan_cost(self, placed):
        als, platform, library, mapping = placed
        result = route_channels(mapping, als, platform)
        assert sum(route.hops for route in result.mapping.routes) == 7

    def test_routes_start_and_end_at_endpoint_routers(self, placed):
        als, platform, library, mapping = placed
        result = route_channels(mapping, als, platform)
        for route in result.mapping.routes:
            assert route.path[0] == platform.tile(route.source_tile).position
            assert route.path[-1] == platform.tile(route.target_tile).position

    def test_heaviest_channel_routed_first(self, placed):
        als, platform, library, mapping = placed
        heaviest = max(
            als.kpn.data_channels(),
            key=lambda c: channel_throughput_bits_per_s(c, als.period_ns),
        )
        assert heaviest.name == "c_adc_pfx"

    def test_throughput_requirement_computed_from_period(self, placed):
        als, platform, library, mapping = placed
        result = route_channels(mapping, als, platform)
        route = result.mapping.route("c_adc_pfx")
        # 80 tokens x 32 bit / 4 us = 640 Mbit/s.
        assert route.required_bits_per_s == pytest.approx(640e6)

    def test_link_loads_accumulated(self, placed):
        als, platform, library, mapping = placed
        result = route_channels(mapping, als, platform)
        assert result.link_loads_bits_per_s
        assert all(load > 0 for load in result.link_loads_bits_per_s.values())

    def test_unplaced_endpoint_produces_feedback(self, case_study):
        als, platform, library = case_study
        from repro.mapping.mapping import Mapping

        result = route_channels(Mapping(als.name), als, platform)
        assert not result.succeeded
        assert all(f.kind is FeedbackKind.ROUTING_FAILED for f in result.feedback)

    def test_insufficient_capacity_produces_feedback(self, placed):
        als, platform, library, _ = placed
        tight_platform = hiperlan2.build_mpsoc(link_capacity_bits_per_s=1e6)
        step1 = select_implementations(als, tight_platform, library)
        step2 = refine_tile_assignment(step1.mapping, als, tight_platform)
        result = route_channels(step2.mapping, als, tight_platform)
        assert not result.succeeded
        assert any(f.kind is FeedbackKind.ROUTING_FAILED for f in result.feedback)

    def test_local_channel_gets_zero_hop_route(self, case_study):
        als, platform, library = case_study
        from repro.mapping.assignment import ProcessAssignment
        from repro.mapping.mapping import Mapping

        mapping = Mapping(als.name)
        arm_impl = {
            name: library.implementation_for(name, "ARM")
            for name in ("prefix_removal", "freq_offset_correction")
        }
        montium_impl = {
            name: library.implementation_for(name, "MONTIUM")
            for name in ("inverse_ofdm", "remainder")
        }
        # Put the two ARM processes on the same tile (2 slots would be needed,
        # adherence is not what is under test here).
        mapping.assign(ProcessAssignment("prefix_removal", "arm1", arm_impl["prefix_removal"]))
        mapping.assign(
            ProcessAssignment("freq_offset_correction", "arm1", arm_impl["freq_offset_correction"])
        )
        mapping.assign(ProcessAssignment("inverse_ofdm", "montium1", montium_impl["inverse_ofdm"]))
        mapping.assign(ProcessAssignment("remainder", "montium2", montium_impl["remainder"]))
        result = route_channels(mapping, als, platform)
        assert result.succeeded
        assert result.mapping.route("c_pfx_frq").is_local
