"""Channels of a KPN."""

import pytest

from repro.kpn.channel import Channel


class TestChannelValidation:
    def test_basic_channel(self):
        channel = Channel("c", "a", "b", tokens_per_iteration=64)
        assert channel.endpoints() == ("a", "b")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Channel("", "a", "b")

    def test_missing_endpoint_rejected(self):
        with pytest.raises(ValueError):
            Channel("c", "", "b")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Channel("c", "a", "a")

    def test_negative_tokens_rejected(self):
        with pytest.raises(ValueError):
            Channel("c", "a", "b", tokens_per_iteration=-1)

    def test_zero_token_size_rejected(self):
        with pytest.raises(ValueError):
            Channel("c", "a", "b", token_size_bits=0)


class TestChannelVolumes:
    def test_bits_per_iteration(self):
        channel = Channel("c", "a", "b", tokens_per_iteration=80, token_size_bits=32)
        assert channel.bits_per_iteration == 2560

    def test_bytes_per_iteration(self):
        channel = Channel("c", "a", "b", tokens_per_iteration=80, token_size_bits=32)
        assert channel.bytes_per_iteration == 320

    def test_control_channel_flag(self):
        channel = Channel("c", "ctrl", "demap", is_control=True)
        assert channel.is_control

    def test_str_mentions_endpoints(self):
        text = str(Channel("c", "a", "b"))
        assert "a" in text and "b" in text
