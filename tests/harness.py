"""Reusable scenario harness for engine, inter-region and admission tests.

The engine differential tests, the engine unit tests, the admission-control
tests and the benchmark suite all need the same scaffolding: a small
region-partitioned platform, synthetic applications pinned to one region's
I/O tile, a manager wired to that platform, deterministic generated
workloads, and an engine over a chosen executor.  Those pieces used to be
copy-pasted per file; this module is the single home.

Everything is deterministic given its explicit seeds — two calls with equal
arguments build equal platforms/workloads (event sequence numbers aside,
which only break equal-time ties deterministically).

The module doubles as a pytest fixture source: ``case_study`` and
``fast_config`` are defined here once and re-exported by the test and
benchmark ``conftest.py`` files.
"""

from __future__ import annotations

import pytest

from repro.platform.builder import PlatformBuilder
from repro.platform.regions import RegionPartition
from repro.runtime.engine import (
    ProcessRegionExecutor,
    SerialRegionExecutor,
    ThreadedRegionExecutor,
    WorkloadEngine,
)
from repro.runtime.manager import RuntimeResourceManager
from repro.spatialmapper.config import MapperConfig
from repro.workloads import hiperlan2
from repro.workloads.arrivals import (
    BurstyArrivals,
    PoissonArrivals,
    TrafficClass,
    generate_workload,
)
from repro.workloads.synthetic import SyntheticConfig, generate_application

MILLISECOND = 1e6

#: Shape of the harness's synthetic applications: two GPP stages.
TWO_STAGE_CONFIG = SyntheticConfig(stages=2, period_ns=100_000.0, tile_types=("GPP",))


# --------------------------------------------------------------------------- #
# Platform / application / manager factories
# --------------------------------------------------------------------------- #
def build_two_region_platform():
    """A 4x2 mesh with one I/O tile and three GPP tiles per half.

    Split down the middle by :func:`two_region_partition`, each half hosts
    one region lane's traffic (pinned through ``io_l`` / ``io_r``).
    """
    builder = (
        PlatformBuilder("two_region")
        .mesh(4, 2, link_capacity_bits_per_s=4e9, router_frequency_mhz=200.0)
        .tile_type("IO", frequency_mhz=200.0, is_processing=False)
        .tile_type("GPP", frequency_mhz=200.0)
        .tile("io_l", "IO", (0, 0))
        .tile("io_r", "IO", (3, 0))
    )
    for index, position in enumerate([(0, 1), (1, 0), (1, 1)]):
        builder.tile(f"gpp_l{index}", "GPP", position, memory_bytes=128 * 1024)
    for index, position in enumerate([(2, 0), (2, 1), (3, 1)]):
        builder.tile(f"gpp_r{index}", "GPP", position, memory_bytes=128 * 1024)
    return builder.build()


def two_region_partition(platform) -> RegionPartition:
    """The 2x1 grid partition of :func:`build_two_region_platform`."""
    return RegionPartition.grid(platform, 2, 1)


def make_app(seed: int, name: str, io_tile: str, config: SyntheticConfig | None = None):
    """A synthetic application pinned to one region's I/O tile."""
    return generate_application(
        seed,
        config or TWO_STAGE_CONFIG,
        name=name,
        source_tile=io_tile,
        sink_tile=io_tile,
    )


def make_manager(platform=None, **kwargs) -> RuntimeResourceManager:
    """A manager over the two-region platform (fresh by default).

    Keyword arguments are forwarded to :class:`RuntimeResourceManager`
    (e.g. ``region_scorer=...``, ``cross_region_planner=True``); ``config``
    and ``partition`` default to the harness's fast mapper configuration
    and the two-region grid.
    """
    platform = platform if platform is not None else build_two_region_platform()
    kwargs.setdefault("config", MapperConfig(analysis_iterations=3))
    kwargs.setdefault("partition", two_region_partition(platform))
    return RuntimeResourceManager(platform, **kwargs)


def make_engine(
    manager: RuntimeResourceManager,
    *,
    executor: str = "serial",
    **kwargs,
) -> WorkloadEngine:
    """An engine over the manager with a named executor kind.

    ``executor`` is ``"serial"``, ``"threaded"`` or ``"process"``;
    remaining keyword arguments (``park_rejections``, ``governor``,
    ``drain_mode``, ...) are forwarded to :class:`WorkloadEngine`.  The
    process executor gets a pinned two-worker pool so tests behave the
    same on any core count; callers should ``close()`` it (or rely on
    garbage collection) when done.
    """
    if executor == "threaded":
        backend = ThreadedRegionExecutor(manager.partition)
    elif executor == "serial":
        backend = SerialRegionExecutor()
    elif executor == "process":
        backend = ProcessRegionExecutor(manager.partition, workers=2)
    else:
        raise ValueError(f"unknown executor kind {executor!r}")
    return WorkloadEngine(manager, executor=backend, **kwargs)


# --------------------------------------------------------------------------- #
# Workload factories
# --------------------------------------------------------------------------- #
def two_region_classes(
    *,
    priority: int = 0,
    hold_range_ns: tuple[float, float] = (2 * MILLISECOND, 5 * MILLISECOND),
) -> list[TrafficClass]:
    """The harness's standard two-lane mix: Poisson left, bursty right."""
    return [
        TrafficClass(
            "left",
            PoissonArrivals(rate_per_s=900.0),
            config=TWO_STAGE_CONFIG,
            priority=priority,
            source_tile="io_l",
            sink_tile="io_l",
            hold_range_ns=hold_range_ns,
        ),
        TrafficClass(
            "right",
            BurstyArrivals(burst_rate_per_s=250.0, burst_size_range=(2, 4)),
            config=TWO_STAGE_CONFIG,
            priority=priority,
            source_tile="io_r",
            sink_tile="io_r",
            hold_range_ns=hold_range_ns,
        ),
    ]


def two_region_workload(
    seed: int,
    horizon_ns: float = 12 * MILLISECOND,
    classes: list[TrafficClass] | None = None,
    *,
    name: str = "harness",
):
    """A deterministic generated workload over the two-region mix."""
    return generate_workload(
        seed, horizon_ns, classes if classes is not None else two_region_classes(), name=name
    )


# --------------------------------------------------------------------------- #
# Shared fixtures (re-exported by tests/conftest.py and benchmarks/conftest.py)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def case_study():
    """The HiperLAN/2 case study: (ALS, platform, implementation library)."""
    return hiperlan2.build_case_study()


@pytest.fixture(scope="session")
def fast_config():
    """Mapper configuration with a reduced analysis horizon for benchmarking."""
    return MapperConfig(analysis_iterations=4)
