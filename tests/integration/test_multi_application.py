"""Multi-application run-time scenarios across the whole stack."""

import pytest

from repro.baselines.design_time import DesignTimeMapper
from repro.runtime.events import StartEvent, StopEvent
from repro.runtime.manager import RuntimeResourceManager
from repro.runtime.scenario import Scenario, run_scenario
from repro.spatialmapper.config import MapperConfig
from repro.workloads import hiperlan2
from repro.workloads.receivers import (
    build_drm_library,
    build_drm_receiver_als,
    build_image_library,
    build_image_pipeline_als,
)
from repro.workloads.synthetic import generate_application, generate_platform


@pytest.fixture()
def fast_config():
    return MapperConfig(analysis_iterations=3)


class TestHeterogeneousApplicationMix:
    def test_hiperlan_and_drm_share_the_platform(self, fast_config):
        platform = hiperlan2.build_mpsoc(arm_memory_bytes=512 * 1024)
        manager = RuntimeResourceManager(platform, config=fast_config)
        rx = hiperlan2.build_receiver_als()
        rx_result = manager.start(rx, library=hiperlan2.build_implementation_library())
        assert rx_result.is_feasible
        # The DRM receiver needs tiles of its own; with every processing tile
        # taken by the HiperLAN/2 receiver it must be rejected.
        drm = build_drm_receiver_als()
        assert manager.try_start(drm, library=build_drm_library()) is None
        # Once the HiperLAN/2 receiver stops, the DRM receiver fits.
        manager.stop(rx.name)
        drm_result = manager.start(drm, library=build_drm_library())
        assert drm_result.is_feasible

    def test_image_pipeline_on_synthetic_platform(self, fast_config):
        platform = generate_platform(seed=3, width=4, height=4,
                                     tile_type_mix={"ARM": 0.6, "MONTIUM": 0.4})
        # Give the pipeline's pinned processes a home on this platform.
        als = build_image_pipeline_als(source_tile="io_in", sink_tile="io_out")
        manager = RuntimeResourceManager(platform, config=fast_config)
        result = manager.try_start(als, library=build_image_library())
        assert result is not None
        assert manager.is_running(als.name)

    def test_scenario_with_arrivals_and_departures(self, fast_config):
        platform = hiperlan2.build_mpsoc()
        manager = RuntimeResourceManager(platform, config=fast_config)
        rx = hiperlan2.build_receiver_als()
        drm = build_drm_receiver_als()
        scenario = (
            Scenario("mix", duration_ns=10_000_000.0)
            .add(StartEvent(time_ns=0.0, als=rx,
                            library=hiperlan2.build_implementation_library()))
            .add(StartEvent(time_ns=1_000_000.0, als=drm, library=build_drm_library()))
            .add(StopEvent(time_ns=5_000_000.0, application=rx.name))
            .add(StartEvent(time_ns=6_000_000.0, als=build_drm_receiver_als(),
                            library=build_drm_library()))
        )
        outcome = run_scenario(manager, scenario)
        # First start admitted; the DRM arrival at t=1 ms is rejected (platform
        # full); after the receiver departs the second DRM instance would share
        # the name "drm_rx" with the rejected one, so it is admitted.
        assert rx.name in outcome.admitted
        assert outcome.total_energy_nj > 0
        assert 0 < outcome.admission_rate < 1


class TestRunTimeVersusDesignTime:
    def test_runtime_mapping_adapts_where_design_time_fails(self, fast_config):
        """The motivating claim of the paper: with run-time knowledge the
        mapper can still place an application when the pre-computed mapping's
        tiles are taken by other applications."""
        from repro.workloads.synthetic import SyntheticConfig

        app = generate_application(
            seed=10, config=SyntheticConfig(stages=4, period_ns=20_000.0)
        )
        platform = generate_platform(
            seed=11, width=5, height=5, tile_type_mix={"GPP": 0.7, "DSP": 0.3}
        )
        runtime_manager = RuntimeResourceManager(platform, app.library, fast_config)
        design_time = DesignTimeMapper(platform, app.library, fast_config)
        design_time.precompute(app.als)

        # Occupy the exact tiles the design-time mapping wants.
        frozen = design_time._design_time_mappings[app.als.name]
        from repro.platform.state import PlatformState, ProcessAllocation

        state = PlatformState(platform)
        for assignment in frozen.assignments:
            if assignment.implementation is not None:
                state.allocate_process(
                    ProcessAllocation("other", f"blk_{assignment.process}", assignment.tile)
                )

        replay = design_time.map(app.als, state)
        assert not replay.is_feasible

        from repro.spatialmapper.mapper import SpatialMapper

        adaptive = SpatialMapper(platform, app.library, fast_config).map(app.als, state)
        assert adaptive.is_feasible
