"""Differential tests: engine vs legacy player, parallel vs serial draining.

Two equivalences anchor the engine refactor:

* :func:`run_scenario` (now a thin adapter over the engine in immediate
  drain mode) must be decision-for-decision — and energy-for-energy —
  identical to the legacy player that called the manager directly; the
  reference implementation is inlined here, frozen at its PR 2 behaviour.
* Draining with the threaded per-region executor — and with the
  process-parallel snapshot-out / delta-in executor — must be
  decision-identical to the serial executor on the same event stream,
  across generated workloads, with and without rejection parking.
"""

import pytest

from repro.exceptions import AdmissionError
from repro.platform.regions import RegionPartition
from repro.runtime.accounting import EnergyAccount
from repro.runtime.engine import (
    ProcessRegionExecutor,
    SerialRegionExecutor,
    ThreadedRegionExecutor,
    WorkloadEngine,
)
from repro.runtime.events import StartEvent, StopEvent
from repro.runtime.manager import RuntimeResourceManager
from repro.runtime.scenario import ScenarioOutcome, run_scenario
from repro.spatialmapper.config import MapperConfig
from repro.workloads.arrivals import (
    PoissonArrivals,
    TrafficClass,
    generate_workload,
    offered_rate_per_s,
)
from repro.workloads.synthetic import SyntheticConfig, generate_region_mesh
from tests.harness import (
    MILLISECOND,
    TWO_STAGE_CONFIG as CONFIG,
    make_manager,
    two_region_classes as workload_classes,
)


def legacy_run_scenario(manager, scenario):
    """The PR 2 scenario player, frozen as the differential reference."""
    outcome = ScenarioOutcome(scenario=scenario.name)
    for event in scenario.sorted_events():
        if isinstance(event, StartEvent):
            try:
                result = manager.start(
                    event.als, library=event.library, time_ns=event.time_ns
                )
            except AdmissionError as error:
                outcome.rejected.append((event.application, str(error)))
                continue
            outcome.admitted.append(event.application)
            outcome.energy.start(
                event.application,
                event.time_ns,
                result.energy_nj_per_iteration,
                event.als.period_ns,
            )
        elif isinstance(event, StopEvent):
            if manager.is_running(event.application):
                manager.stop(event.application)
                outcome.energy.stop(event.application, event.time_ns)
    outcome.end_time_ns = scenario.end_time_ns()
    outcome.energy.finish(outcome.end_time_ns)
    return outcome


class TestScenarioAdapterDifferential:
    @pytest.mark.parametrize("seed", [3, 21])
    def test_run_scenario_matches_legacy_player(self, seed):
        # No deadlines/priorities: the legacy player predates both.
        classes = [
            TrafficClass(
                "left",
                PoissonArrivals(rate_per_s=700.0),
                config=CONFIG,
                source_tile="io_l",
                sink_tile="io_l",
                hold_range_ns=(2 * MILLISECOND, 4 * MILLISECOND),
            ),
            TrafficClass(
                "right",
                PoissonArrivals(rate_per_s=700.0),
                config=CONFIG,
                source_tile="io_r",
                sink_tile="io_r",
                hold_range_ns=(2 * MILLISECOND, 4 * MILLISECOND),
            ),
        ]
        scenario = generate_workload(seed, 15 * MILLISECOND, classes, name="diff")

        legacy_manager = make_manager()
        legacy = legacy_run_scenario(legacy_manager, scenario)
        adapter_manager = make_manager()
        adapter = run_scenario(adapter_manager, scenario)

        assert adapter.admitted == legacy.admitted
        assert adapter.rejected == legacy.rejected
        assert adapter.admission_rate == pytest.approx(legacy.admission_rate)
        assert adapter.total_energy_nj == pytest.approx(legacy.total_energy_nj)
        assert adapter.end_time_ns == pytest.approx(legacy.end_time_ns)
        assert adapter_manager.decisions == legacy_manager.decisions
        assert sorted(adapter_manager.state.occupied_tiles()) == sorted(
            legacy_manager.state.occupied_tiles()
        )
        assert isinstance(adapter.energy, EnergyAccount)


class TestParallelDrainDifferential:
    @pytest.mark.parametrize("seed", [5, 17])
    @pytest.mark.parametrize("park", [False, True])
    @pytest.mark.parametrize("kind", ["threaded", "process"])
    def test_parallel_drain_is_decision_identical_to_serial(self, seed, park, kind):
        scenario = generate_workload(
            seed, 12 * MILLISECOND, workload_classes(), name="parallel-diff"
        )

        serial_manager = make_manager()
        serial = WorkloadEngine(
            serial_manager,
            executor=SerialRegionExecutor(),
            park_rejections=park,
        ).run(scenario)

        parallel_manager = make_manager()
        executor = (
            ThreadedRegionExecutor(parallel_manager.partition)
            if kind == "threaded"
            else ProcessRegionExecutor(parallel_manager.partition, workers=2)
        )
        try:
            parallel = WorkloadEngine(
                parallel_manager,
                executor=executor,
                park_rejections=park,
            ).run(scenario)
        finally:
            if kind == "process":
                executor.close()

        assert serial.decision_log() == parallel.decision_log()
        assert serial_manager.decisions == parallel_manager.decisions
        assert sorted(serial_manager.state.occupied_tiles()) == sorted(
            parallel_manager.state.occupied_tiles()
        )
        assert serial_manager.state.link_loads() == parallel_manager.state.link_loads()
        assert serial.energy.total_energy_nj == pytest.approx(
            parallel.energy.total_energy_nj
        )
        assert serial.departures == parallel.departures
        if kind == "process":
            # The snapshot-out / delta-in protocol must report its traffic.
            workers = parallel.telemetry.workers
            assert workers and sum(w["requests"] for w in workers.values()) > 0

    def test_parking_changes_work_not_decisions_visible_to_clients(self):
        # With parking on, hopeless requests are skipped between state
        # changes — admitted sets must match the non-parking engine run on
        # the same stream (rejections may differ in *when* they settle).
        scenario = generate_workload(
            9, 12 * MILLISECOND, workload_classes(), name="park-diff"
        )
        plain_manager = make_manager()
        plain = WorkloadEngine(plain_manager, park_rejections=False).run(scenario)
        parked_manager = make_manager()
        parked = WorkloadEngine(parked_manager, park_rejections=True).run(scenario)
        assert set(parked.admitted) <= set(plain.admitted) | set(
            r for r, _ in plain.rejected
        )
        assert parked.parked_retries_skipped >= 0
        assert plain.decided == parked.decided


class TestRescueLaneDifferential:
    """Serial vs threaded vs process drains with the rescue lane enabled.

    The stochastic rescue lane must not cost executor decision identity:
    its searcher seeds derive from the request fingerprints (never from
    global RNG state or the wall clock), so the serial, threaded and
    process drains of one event stream must decide identically — down to
    bit-identical platform-state fingerprints — even while rescue
    adoptions are flipping rejections into admissions.  The platform is
    the packing regime (multi-slot tiles, tight memories) where the lane
    actually fires; a rescue-off serial run pins that it did.
    """

    RESCUE_CONFIG = MapperConfig(
        analysis_iterations=3, rescue_searchers=3, rescue_attempts=3
    )

    def make_rescue_manager(self, config):
        platform = generate_region_mesh(
            2, 2, max_processes_per_tile=3, tile_memory_bytes=12 * 1024
        )
        partition = RegionPartition.grid(platform, 2, 2)
        return RuntimeResourceManager(platform, config=config, partition=partition)

    def rescue_workload(self):
        app_config = SyntheticConfig(
            stages=4,
            period_ns=60_000.0,
            tokens_range=(16, 64),
            tile_types=("GPP", "DSP"),
            memory_choices=(2048, 4096, 8192, 12288),
        )
        classes = [
            TrafficClass(
                f"r{cx}_{cy}",
                PoissonArrivals(rate_per_s=900.0),
                config=app_config,
                source_tile=f"io_r{cx}_{cy}",
                sink_tile=f"io_r{cx}_{cy}",
                hold_range_ns=(3 * MILLISECOND, 8 * MILLISECOND),
            )
            for cx in range(2)
            for cy in range(2)
        ]
        return generate_workload(11, 7 * MILLISECOND, classes, name="rescue-diff")

    def run_one(self, kind, config):
        manager = self.make_rescue_manager(config)
        if kind == "threaded":
            executor = ThreadedRegionExecutor(manager.partition)
        elif kind == "process":
            executor = ProcessRegionExecutor(manager.partition, workers=2)
        else:
            executor = SerialRegionExecutor()
        try:
            outcome = WorkloadEngine(
                manager, executor=executor, park_rejections=True
            ).run(self.rescue_workload())
        finally:
            if kind == "process":
                executor.close()
        return manager, outcome

    @pytest.fixture(scope="class")
    def serial_rescue(self):
        """The serial reference drain, shared by both differential tests."""
        return self.run_one("serial", self.RESCUE_CONFIG)

    def test_rescue_enabled_drains_are_decision_identical(self, serial_rescue):
        serial_manager, serial = serial_rescue
        for kind in ("threaded", "process"):
            manager, outcome = self.run_one(kind, self.RESCUE_CONFIG)
            assert serial.decision_log() == outcome.decision_log(), kind
            assert serial_manager.decisions == manager.decisions, kind
            assert sorted(serial_manager.state.occupied_tiles()) == sorted(
                manager.state.occupied_tiles()
            ), kind
            assert (
                serial_manager.state.link_loads() == manager.state.link_loads()
            ), kind
            # Bit-identical end states, not just equal-looking ones.
            assert (
                serial_manager.state.fingerprint() == manager.state.fingerprint()
            ), kind
            assert serial.departures == outcome.departures, kind

    def test_rescue_actually_fired_on_this_stream(self, serial_rescue):
        """The differential must exercise the lane, not an idle code path:
        with rescue on, the same stream admits strictly more than with the
        lane disabled (every extra admission is a rescue adoption)."""
        _, without = self.run_one("serial", MapperConfig(analysis_iterations=3))
        _, with_rescue = serial_rescue
        assert with_rescue.decided == without.decided
        assert len(with_rescue.admitted) > len(without.admitted)


class TestOfferedLoadCurve:
    def test_admission_rate_degrades_with_offered_load(self):
        rates = {}
        for factor in (0.25, 4.0):
            classes = [c.scaled(factor) for c in workload_classes()]
            scenario = generate_workload(
                31, 10 * MILLISECOND, classes, name=f"load-{factor}"
            )
            manager = make_manager()
            outcome = WorkloadEngine(manager, park_rejections=True).run(scenario)
            rates[factor] = outcome.admission_rate
            assert outcome.decided > 0
        assert offered_rate_per_s(
            [c.scaled(4.0) for c in workload_classes()]
        ) > offered_rate_per_s([c.scaled(0.25) for c in workload_classes()])
        # More offered load cannot improve the admission rate.
        assert rates[4.0] <= rates[0.25] + 1e-9
