"""Differential: the inter-region planner against the global-lane reference.

The global lane (unrestricted whole-platform mapping under every region
lock) remains in the codebase as the planner's differential reference.
These tests pin the equivalence the tentpole promises:

* for *single-region* applications the planner never engages, so a
  planner-enabled engine is decision-for-decision identical to a planner-
  free one;
* for *cross-region* applications, planner and global lane agree on
  feasibility (admit/reject), and an admitted plan's energy stays within
  tolerance of the global mapping's — corridors trade a bounded amount of
  route energy for not serializing the platform;
* a planner rejection falls back to the global lane, so enabling the
  planner can never lose an admission the global lane would have made.
"""

import pytest

from repro.platform.regions import RegionPartition
from repro.runtime.engine import (
    ProcessRegionExecutor,
    SerialRegionExecutor,
    ThreadedRegionExecutor,
    WorkloadEngine,
)
from repro.runtime.manager import RuntimeResourceManager
from repro.spatialmapper.config import MapperConfig
from repro.workloads.arrivals import (
    PoissonArrivals,
    TrafficClass,
    cross_region_classes,
    generate_workload,
)
from repro.workloads.synthetic import SyntheticConfig, generate_application, generate_region_mesh

REGIONS = 2
SPAN = 4
CONFIG = SyntheticConfig(stages=4, period_ns=100_000.0, tile_types=("GPP", "DSP"))
#: Energy tolerance of an admitted plan vs the global mapping of the same
#: application on the same state.  Corridors may detour; the pseudo-endpoint
#: pull keeps the overhead bounded.
ENERGY_TOLERANCE = 1.35


def make_manager(*, planner: bool):
    platform = generate_region_mesh(REGIONS, SPAN)
    partition = RegionPartition.grid(platform, REGIONS, REGIONS)
    return RuntimeResourceManager(
        platform,
        config=MapperConfig(analysis_iterations=3),
        partition=partition,
        cross_region_planner=planner,
    )


def single_region_workload():
    classes = [
        TrafficClass(
            f"r{cx}_{cy}",
            PoissonArrivals(rate_per_s=500.0),
            config=CONFIG,
            source_tile=f"io_r{cx}_{cy}",
            sink_tile=f"io_r{cx}_{cy}",
            hold_range_ns=(3e6, 8e6),
            admission_window_ns=5e6,
        )
        for cx in range(REGIONS)
        for cy in range(REGIONS)
    ]
    return generate_workload(77, 1.5e7, classes, name="single-region-only")


class TestSingleRegionIdentity:
    def test_planner_engine_is_decision_identical_for_single_region_apps(self):
        """The planner must be inert for apps it does not apply to."""
        workload = single_region_workload()
        outcomes = {}
        for label, planner in (("off", False), ("on", True)):
            manager = make_manager(planner=planner)
            engine = WorkloadEngine(
                manager, executor=SerialRegionExecutor(), park_rejections=True
            )
            outcomes[label] = engine.run(workload)
        assert outcomes["on"].decision_log() == outcomes["off"].decision_log()
        assert outcomes["on"].departures == outcomes["off"].departures
        assert outcomes["on"].energy.total_energy_nj == pytest.approx(
            outcomes["off"].energy.total_energy_nj
        )
        # And nothing ever settled in the multi-region lane.
        assert "__multi__" not in outcomes["on"].telemetry.lanes

    def test_parallel_planner_engines_match_serial(self):
        """The multi-region lane preserves executor decision-identity."""
        classes = [
            TrafficClass(
                "r0_0",
                PoissonArrivals(rate_per_s=400.0),
                config=CONFIG,
                source_tile="io_r0_0",
                sink_tile="io_r0_0",
                hold_range_ns=(3e6, 8e6),
            )
        ] + cross_region_classes(
            REGIONS, 400.0, config=CONFIG, hold_range_ns=(3e6, 8e6)
        )
        workload = generate_workload(78, 1.5e7, classes, name="mixed")
        outcomes = {}
        for kind in ("serial", "threaded", "process"):
            manager = make_manager(planner=True)
            if kind == "threaded":
                executor = ThreadedRegionExecutor(manager.partition)
            elif kind == "process":
                executor = ProcessRegionExecutor(manager.partition, workers=2)
            else:
                executor = SerialRegionExecutor()
            engine = WorkloadEngine(manager, executor=executor, park_rejections=True)
            try:
                outcomes[kind] = engine.run(workload)
            finally:
                if kind == "process":
                    executor.close()
        for kind in ("threaded", "process"):
            assert outcomes["serial"].decision_log() == outcomes[kind].decision_log()
            assert outcomes["serial"].departures == outcomes[kind].departures
        multi = outcomes["serial"].telemetry.lanes.get("__multi__")
        assert multi is not None and multi.admitted > 0


class TestCrossRegionEquivalence:
    def test_planner_and_global_agree_per_application(self):
        """Admit/reject parity and bounded energy divergence, app by app.

        Each application is offered to a *fresh* platform under both
        disciplines, so the comparison is exact (no state divergence).
        """
        compared = 0
        for seed in range(12):
            app = generate_application(
                1000 + seed,
                CONFIG,
                name=f"x{seed}",
                source_tile="io_r0_0",
                sink_tile="io_r1_1",
            )
            with_planner = make_manager(planner=True)
            planned = with_planner.pipeline.interregion.decide(app.als, app.library)
            reference = make_manager(planner=False)
            global_decision = reference.admit(app.als, library=app.library)
            if planned.admitted:
                # Feasibility equivalence: what the planner admits, the
                # global lane admits too.
                assert global_decision.admitted, global_decision.reason
                ratio = (
                    planned.result.energy_nj_per_iteration
                    / global_decision.result.energy_nj_per_iteration
                )
                assert ratio <= ENERGY_TOLERANCE, (seed, ratio)
                compared += 1
            else:
                # A planner rejection is allowed (corridors are stricter),
                # but the full pipeline must then match the reference via
                # its global fallback.
                fallback = make_manager(planner=True).admit(app.als, library=app.library)
                assert fallback.admitted == global_decision.admitted
        assert compared >= 8, "too few admitted plans to compare energies"

    def test_pipeline_with_planner_never_loses_admissions(self):
        """Full pipeline decisions (planner + fallback) match the reference."""
        for seed in range(8):
            app = generate_application(
                2000 + seed,
                CONFIG,
                name=f"y{seed}",
                source_tile="io_r1_0",
                sink_tile="io_r0_1",
            )
            with_planner = make_manager(planner=True)
            reference = make_manager(planner=False)
            ours = with_planner.admit(app.als, library=app.library)
            theirs = reference.admit(app.als, library=app.library)
            assert ours.admitted == theirs.admitted, (seed, ours.reason, theirs.reason)
