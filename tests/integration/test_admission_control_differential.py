"""Differential pins for adaptive admission control.

Three equivalences anchor the subsystem:

* the composite region scorer at its *neutral* policy (``fill_only``, no
  feedback memory) must order — and therefore decide — exactly like the
  historic least-filled-first selection stage, on the serial, threaded and
  process executors alike;
* an engine with a *disabled* governor (and one with no governor at all)
  must be decision-inert: bit-identical outcomes to the pre-governor
  engine;
* with the full adaptive configuration (composite scoring, rejection
  feedback, governor shedding) every parallel executor (threaded and
  process) must stay decision-identical to the serial reference —
  feedback updates and governor state both live on the engine thread in
  settlement order, and this test is what keeps them there.
"""

import pytest

from repro.runtime.admission_control import GovernorConfig, LoadSheddingGovernor
from repro.spatialmapper.region_score import RegionScorePolicy, RegionScorer
from tests.harness import make_engine, make_manager, two_region_workload


def outcome_key(manager, outcome):
    """Everything a differential comparison should pin about one run."""
    return (
        outcome.decision_log(),
        manager.decisions,
        sorted(manager.state.occupied_tiles()),
        manager.state.link_loads(),
        outcome.departures,
    )


def run(seed, *, executor="serial", scorer=None, governor=None, park=True):
    manager = make_manager(region_scorer=scorer)
    engine = make_engine(
        manager, executor=executor, governor=governor, park_rejections=park
    )
    try:
        outcome = engine.run(two_region_workload(seed, name=f"acd-{seed}"))
    finally:
        close = getattr(engine.executor, "close", None)
        if close is not None:
            close()
    return manager, outcome


class TestNeutralScorerDifferential:
    @pytest.mark.parametrize("seed", [5, 17, 29])
    @pytest.mark.parametrize("executor", ["serial", "threaded", "process"])
    def test_fill_only_scorer_reproduces_fill_level_decisions(self, seed, executor):
        baseline_manager, baseline = run(seed, executor=executor)
        scored_manager, scored = run(
            seed,
            executor=executor,
            scorer=RegionScorer(RegionScorePolicy.fill_only()),
            governor=LoadSheddingGovernor(enabled=False),
        )
        assert outcome_key(scored_manager, scored) == outcome_key(
            baseline_manager, baseline
        )
        assert scored.energy.total_energy_nj == pytest.approx(
            baseline.energy.total_energy_nj
        )

    def test_candidate_ordering_matches_historic_stage(self):
        from tests.harness import make_app

        baseline = make_manager()
        scored = make_manager(region_scorer=RegionScorer(RegionScorePolicy.fill_only()))
        # Partially fill to make fill levels diverge, identically on both.
        for manager in (baseline, scored):
            for index in range(2):
                app = make_app(60 + index, f"fill{index}", "io_l")
                manager.admit(app.als, library=app.library)
        probe = make_app(70, "probe", "io_r")
        names = lambda cs: [r.name if r is not None else None for r in cs]  # noqa: E731
        assert names(scored.pipeline.candidate_regions(probe.als, probe.library)) == names(
            baseline.pipeline.candidate_regions(probe.als, probe.library)
        )


class TestGovernorInertness:
    @pytest.mark.parametrize("seed", [7, 23])
    def test_disabled_governor_is_decision_inert(self, seed):
        baseline_manager, baseline = run(seed, governor=None)
        governed_manager, governed = run(
            seed,
            governor=LoadSheddingGovernor(
                GovernorConfig(rate_floor=0.9, resume_margin=0.05, min_samples=1),
                enabled=False,
            ),
        )
        assert outcome_key(governed_manager, governed) == outcome_key(
            baseline_manager, baseline
        )
        # The disabled governor still reports telemetry — inert in
        # decisions, not invisible.
        assert governed.telemetry.governor is not None
        assert governed.telemetry.governor["shed"] == 0


class TestAdaptiveExecutorIdentity:
    @pytest.mark.parametrize("seed", [11, 41])
    @pytest.mark.parametrize("executor", ["threaded", "process"])
    def test_full_adaptive_config_is_executor_invariant(self, seed, executor):
        def adaptive_run(kind):
            return run(
                seed,
                executor=kind,
                scorer=RegionScorer.adaptive(),
                governor=LoadSheddingGovernor(
                    GovernorConfig(rate_floor=0.5, window=16, min_samples=4)
                ),
            )

        serial_manager, serial = adaptive_run("serial")
        parallel_manager, parallel = adaptive_run(executor)
        assert outcome_key(serial_manager, serial) == outcome_key(
            parallel_manager, parallel
        )
        assert serial.telemetry.governor == parallel.telemetry.governor
