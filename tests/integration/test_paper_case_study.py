"""End-to-end reproduction of the paper's worked example (section 4).

These tests tie all subsystems together exactly the way the paper does and
assert the paper-level outcomes: the Table 2 iteration trace, the structure of
the final mapped CSDF graph (Figure 3), and the feasibility of the final
mapping under the 4 us QoS constraint.
"""

import pytest

from repro.csdf.analysis.throughput import is_period_sustainable
from repro.csdf.repetition import is_consistent
from repro.mapping.properties import is_adequate, is_adherent
from repro.mapping.result import MappingStatus
from repro.reporting import experiments
from repro.spatialmapper.mapper import SpatialMapper
from repro.workloads import hiperlan2


@pytest.fixture(scope="module")
def mapped_case_study():
    als, platform, library = hiperlan2.build_case_study()
    mapper = SpatialMapper(platform, library)
    result = mapper.map(als)
    return als, platform, library, mapper, result


class TestTable2Reproduction:
    def test_cost_trajectory(self, mapped_case_study):
        _, _, _, mapper, _ = mapped_case_study
        trace = mapper.last_trace.last_step2_trace
        assert trace.initial_cost == 11.0
        assert [i.cost for i in trace.improving_prefix()] == [11.0, 9.0, 7.0]

    def test_initial_greedy_assignment_row(self, mapped_case_study):
        _, _, _, mapper, _ = mapped_case_study
        trace = mapper.last_trace.last_step2_trace
        assert trace.initial_assignment == {
            "prefix_removal": "arm1",
            "freq_offset_correction": "arm2",
            "inverse_ofdm": "montium1",
            "remainder": "montium2",
        }

    def test_final_assignment_row(self, mapped_case_study):
        _, _, _, _, result = mapped_case_study
        assignment = {a.process: a.tile for a in result.mapping.assignments
                      if a.implementation is not None}
        assert assignment == {
            "prefix_removal": "arm2",
            "freq_offset_correction": "arm1",
            "inverse_ofdm": "montium2",
            "remainder": "montium1",
        }

    def test_experiment_driver_renders_paper_table(self):
        report = experiments.experiment_table2()
        rows = report.data["rows"]
        # Initial row + 3 iterations + closing remark.
        assert len(rows) == 5
        assert rows[0][5] == "11" and rows[0][6] == "Initial (greedy) assignment"
        assert rows[1][6] == "No improvement, revert"
        assert rows[2][5] == "9" and rows[3][5] == "7"


class TestFigure3Reproduction:
    def test_mapping_quality_criteria(self, mapped_case_study):
        als, platform, library, _, result = mapped_case_study
        assert result.status is MappingStatus.FEASIBLE
        assert is_adequate(result.mapping, platform, library)
        assert is_adherent(result.mapping, platform, library, als=als)

    def test_mapped_graph_structure(self, mapped_case_study):
        als, _, _, _, result = mapped_case_study
        graph = result.mapped_csdf
        assert is_consistent(graph)
        process_actors = [a for a in graph.actors if a.role == "process"]
        router_actors = [a for a in graph.actors if a.role == "router"]
        assert len(process_actors) == 4
        assert len(router_actors) == sum(r.hops for r in result.mapping.routes)
        # Figure 3 shows router actors with a 4-clock-cycle WCET between every
        # pair of pipeline stages.
        assert all(a.wcet_cycles == (4.0,) for a in router_actors)

    def test_mapped_graph_sustains_the_4us_period(self, mapped_case_study):
        als, _, _, _, result = mapped_case_study
        assert is_period_sustainable(result.mapped_csdf, als.period_ns, iterations=4)

    def test_buffer_capacities_exist_for_every_channel(self, mapped_case_study):
        als, _, _, _, result = mapped_case_study
        buffers = result.mapping.buffer_capacities
        assert set(buffers) == {c.name for c in als.kpn.data_channels()}
        assert all(capacity >= 1 for capacity in buffers.values())

    def test_energy_breakdown(self, mapped_case_study):
        als, platform, _, _, result = mapped_case_study
        computation = result.mapping.computation_energy_nj()
        assert computation == pytest.approx(60 + 62 + 143 + 76)
        assert result.energy_nj_per_iteration >= computation


class TestWholePaperPipeline:
    def test_all_experiments_run(self):
        reports = experiments.all_experiments()
        assert len(reports) == 6
        for report in reports:
            assert report.text

    def test_mapping_every_mode_is_feasible(self):
        """All seven HiperLAN/2 modes can be started on the Figure 2 platform."""
        platform = hiperlan2.build_mpsoc()
        for mode in hiperlan2.HIPERLAN2_MODES:
            als = hiperlan2.build_receiver_als(mode)
            library = hiperlan2.build_implementation_library(mode)
            result = SpatialMapper(platform, library).map(als)
            assert result.status is MappingStatus.FEASIBLE, mode

    def test_runtime_faster_than_a_second(self, mapped_case_study):
        _, _, _, _, result = mapped_case_study
        assert result.runtime_s < 1.0
