"""Cross-cutting integration tests: feedback refinement and baseline comparison."""

import pytest

from repro.baselines.exhaustive import ExhaustiveMapper
from repro.baselines.first_fit import FirstFitMapper
from repro.baselines.random_mapper import RandomMapper
from repro.baselines.simulated_annealing import SimulatedAnnealingMapper
from repro.mapping.result import MappingStatus
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.mapper import SpatialMapper
from repro.workloads import hiperlan2
from repro.workloads.synthetic import SyntheticConfig, generate_application, generate_platform


FAST = MapperConfig(analysis_iterations=3)


class TestFeedbackRefinement:
    def test_congested_noc_triggers_rerouting_feedback(self):
        """With barely enough link capacity the first placement may not be
        routable; the feedback loop must either find an alternative placement
        or report a meaningful failure."""
        als = hiperlan2.build_receiver_als()
        library = hiperlan2.build_implementation_library()
        # 700 Mbit/s links: the 640 Mbit/s A/D channel fits, but two channels
        # can never share a link.
        platform = hiperlan2.build_mpsoc(link_capacity_bits_per_s=700e6)
        result = SpatialMapper(platform, library, FAST).map(als)
        assert result.status in (MappingStatus.FEASIBLE, MappingStatus.ADEQUATE,
                                 MappingStatus.ADHERENT)
        assert result.diagnostics or result.is_feasible

    def test_slow_montium_forces_arm_choice_via_feedback(self):
        """If the Montium runs so slowly that its implementations violate the
        throughput constraint, step-4 feedback must push the heavy kernels to
        their ARM implementations (which then cannot sustain the period either,
        so the mapper reports the best adherent mapping instead of feasible)."""
        als = hiperlan2.build_receiver_als()
        library = hiperlan2.build_implementation_library()
        platform = hiperlan2.build_mpsoc(montium_frequency_mhz=10.0)
        mapper = SpatialMapper(platform, library, FAST)
        result = mapper.map(als)
        assert not result.is_feasible
        assert mapper.last_trace.refinement_iterations >= 2
        assert any("banning implementation" in line for line in mapper.last_trace.feedback_log)

    def test_feasible_first_pass_needs_no_feedback(self, case_study):
        als, platform, library = case_study
        mapper = SpatialMapper(platform, library, FAST)
        result = mapper.map(als)
        assert result.is_feasible
        assert mapper.last_trace.refinement_iterations == 1
        assert mapper.last_trace.feedback_log == []


class TestBaselineComparison:
    @pytest.fixture(scope="class")
    def synthetic_case(self):
        app = generate_application(
            seed=21, config=SyntheticConfig(stages=5, period_ns=20_000.0)
        )
        platform = generate_platform(seed=22, width=4, height=4)
        return app, platform

    def test_heuristic_matches_exhaustive_on_the_paper_case(self, case_study):
        als, platform, library = case_study
        heuristic = SpatialMapper(platform, library, FAST).map(als)
        optimal = ExhaustiveMapper(platform, library, FAST).map(als)
        assert heuristic.is_feasible and optimal.is_feasible
        # On the HiperLAN/2 instance the heuristic finds the optimal
        # computation-energy assignment (the communication estimate may differ
        # by the routing detail, so compare the dominant computation term).
        assert heuristic.mapping.computation_energy_nj() == pytest.approx(
            optimal.mapping.computation_energy_nj()
        )

    def test_heuristic_not_worse_than_random(self, synthetic_case):
        app, platform = synthetic_case
        heuristic = SpatialMapper(platform, app.library, FAST).map(app.als)
        random_best = RandomMapper(platform, app.library, FAST, trials=10, seed=1).map(app.als)
        assert heuristic.status.at_least(random_best.status)
        if heuristic.status is random_best.status is MappingStatus.FEASIBLE:
            assert (
                heuristic.energy_nj_per_iteration
                <= random_best.energy_nj_per_iteration * 1.05
            )

    def test_step2_improves_on_first_fit_communication(self, synthetic_case):
        app, platform = synthetic_case
        heuristic = SpatialMapper(platform, app.library, FAST).map(app.als)
        first_fit = FirstFitMapper(platform, app.library, FAST).map(app.als)
        assert heuristic.manhattan_cost <= first_fit.manhattan_cost

    def test_annealing_and_heuristic_agree_on_feasibility(self, synthetic_case):
        app, platform = synthetic_case
        heuristic = SpatialMapper(platform, app.library, FAST).map(app.als)
        annealed = SimulatedAnnealingMapper(
            platform, app.library, FAST, iterations=150, seed=2
        ).map(app.als)
        assert heuristic.is_feasible == annealed.is_feasible

    def test_all_mappers_run_within_seconds(self, synthetic_case):
        app, platform = synthetic_case
        for mapper in (
            SpatialMapper(platform, app.library, FAST),
            FirstFitMapper(platform, app.library, FAST),
            RandomMapper(platform, app.library, FAST, trials=5),
        ):
            result = mapper.map(app.als)
            assert result.runtime_s < 10.0
