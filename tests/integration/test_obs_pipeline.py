"""End-to-end acceptance of the unified tracing & metrics layer.

The observability layer's contract, pinned against real engine runs:

* **Decision-inert** — with tracing and metrics fully on (sample rate 1.0)
  the engine settles every request identically to an obs-off run, on both
  the serial and the process executor.
* **One connected tree per request** — on the process executor a sampled
  request's spans form a single tree rooted at the engine's ``request``
  span, crossing the process boundary through ``dispatch`` → worker
  ``decide`` → mapper steps, with every worker span re-anchored inside
  its dispatch window and the engine's fold recorded after it.
* **Exportable** — ``write_export`` + ``validate_export`` round-trips a
  real run with zero problems, and the report CLI renders it.
* **Worker analysis deltas** (satellite) — with caches disabled, the
  process executor's folded step-4 analysis totals equal the serial
  executor's, and an obs-off run still reports them.
"""

import pytest

from repro.obs import ObsConfig, validate_export, write_export
from repro.obs.report import main as report_main
from repro.spatialmapper.config import MapperConfig
from tests.harness import (
    MILLISECOND,
    make_engine,
    make_manager,
    two_region_workload,
)


def _run(seed=7, *, executor="serial", obs=None, manager_kwargs=None, **engine_kwargs):
    manager = make_manager(**(manager_kwargs or {}))
    engine = make_engine(manager, executor=executor, obs=obs, **engine_kwargs)
    scenario = two_region_workload(seed, 12 * MILLISECOND, name="obs-accept")
    try:
        return engine.run(scenario)
    finally:
        close = getattr(engine.executor, "close", None)
        if close is not None:
            close()


def _decision_log(outcome):
    return [
        (record.ticket, record.application, record.status.value, record.reason)
        for record in outcome.records
    ]


# --------------------------------------------------------------------------- #
# Decision inertness
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("executor", ["serial", "process"])
def test_obs_on_is_decision_inert(executor):
    baseline = _run(executor=executor)
    traced = _run(executor=executor, obs=ObsConfig(sample_rate=1.0))
    assert _decision_log(traced) == _decision_log(baseline)
    # and the traced run actually traced: one root span per settled request
    roots = [span for span in traced.spans if span.parent_id is None]
    assert len(roots) == len(traced.records)


def test_partial_sampling_is_decision_inert_and_subsets():
    baseline = _run()
    sampled = _run(obs=ObsConfig(sample_rate=0.4, seed=3))
    assert _decision_log(sampled) == _decision_log(baseline)
    traced_ids = {span.trace_id for span in sampled.spans}
    all_ids = {f"obs-accept:{record.ticket}" for record in baseline.records}
    assert traced_ids < all_ids  # strict subset: some but not all at 0.4
    assert traced_ids


def test_obs_off_publishes_nothing_but_analysis_survives():
    outcome = _run()
    assert outcome.spans == []
    assert outcome.metrics is None
    # satellite: analysis counters are telemetry, not observability — they
    # must be populated with obs fully off.
    assert outcome.telemetry.analysis.get("simulations_run", 0) > 0


# --------------------------------------------------------------------------- #
# Cross-process span trees
# --------------------------------------------------------------------------- #
def test_process_run_produces_connected_reanchored_trees():
    outcome = _run(executor="process", obs=ObsConfig(sample_rate=1.0))
    spans = outcome.spans
    by_id = {span.span_id: span for span in spans}
    worker_spans = [span for span in spans if span.process != "engine"]
    assert worker_spans, "process run recorded no worker spans"

    # Every span's parent resolves within the same trace — one connected
    # tree per trace id, rooted at the engine's request span.
    for span in spans:
        if span.parent_id is None:
            assert span.name == "request"
            continue
        parent = by_id[span.parent_id]
        assert parent.trace_id == span.trace_id

    # Worker spans hang under an engine dispatch span and are re-anchored
    # inside its window (the validator's slack applies to stamping skew).
    slack = 1_000
    dispatches = set()
    for span in worker_spans:
        assert dict(span.attrs).get("reanchored") is True
        cursor = span
        while cursor.parent_id is not None and cursor.process != "engine":
            cursor = by_id[cursor.parent_id]
        assert cursor.process == "engine" and cursor.name == "dispatch"
        dispatches.add(cursor.span_id)
        assert span.start_ns >= cursor.start_ns - slack
        assert span.end_ns <= cursor.end_ns + slack

    # Sibling worker decide spans of one dispatch ran sequentially on the
    # worker's lane loop — re-anchoring must preserve their non-overlap.
    for dispatch_id in dispatches:
        decides = sorted(
            (s for s in worker_spans if s.parent_id == dispatch_id and s.name == "decide"),
            key=lambda s: s.start_ns,
        )
        for earlier, later in zip(decides, decides[1:]):
            assert earlier.end_ns <= later.start_ns + slack

    # The mapper's staged pipeline shows up under worker decides, and the
    # engine folds each dispatched lane after its worker round.
    names = {span.name for span in spans}
    assert {"dispatch", "decide", "engine_fold", "queue_wait"} <= names
    assert any(name.startswith("mapper.step") for name in names)
    assert any(name.startswith("map:") for name in names)


def test_export_of_real_run_validates_and_reports(tmp_path, capsys):
    outcome = _run(executor="process", obs=ObsConfig(sample_rate=1.0))
    path = str(tmp_path / "run.jsonl")
    write_export(path, outcome.spans, metrics=outcome.metrics, workload=outcome.workload)
    assert validate_export(path) == []
    assert report_main([path, "--validate"]) == 0
    out = capsys.readouterr().out
    assert "Per-stage latency breakdown" in out
    assert "slowest requests" in out


def test_run_metrics_cover_every_island():
    outcome = _run(executor="process", obs=ObsConfig(sample_rate=1.0))
    counters = outcome.metrics["counters"]
    gauges = outcome.metrics["gauges"]
    histograms = outcome.metrics["histograms"]
    assert any(name.startswith("engine.settled[") for name in counters)
    assert any(name.startswith("analysis.") for name in counters)
    assert any(name.startswith("executor.") for name in counters)
    assert any(name.startswith("queue.") for name in counters)
    assert "governor.admission_rate" in gauges or not outcome.telemetry.governor
    assert "engine.request_latency_s" in histograms
    assert histograms["engine.request_latency_s"]["count"] == len(outcome.records)


# --------------------------------------------------------------------------- #
# Satellite: worker analysis counter deltas
# --------------------------------------------------------------------------- #
def test_worker_analysis_totals_agree_with_serial():
    # Caches off so every decide pays full analysis cost in whichever
    # process runs it — the totals must then be executor-independent.
    manager_kwargs = {
        "mapper_cache_size": 0,
        "config": MapperConfig(analysis_iterations=3, analysis_cache_size=0),
    }
    serial = _run(manager_kwargs=manager_kwargs)
    process = _run(executor="process", manager_kwargs=manager_kwargs)
    assert _decision_log(process) == _decision_log(serial)
    stale = sum(
        stats.get("stale_redecides", 0) for stats in process.telemetry.workers.values()
    )
    assert stale == 0, "stale re-decides would double-count analysis work"
    assert process.telemetry.analysis == serial.telemetry.analysis
    assert serial.telemetry.analysis["simulations_run"] > 0
