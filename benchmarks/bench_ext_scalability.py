"""Extension experiment `ext-scale` — scalability on synthetic workloads.

The paper motivates the hierarchical heuristic with the prohibitive cost of
exhaustive search (the problem is a Generalised Assignment Problem).  This
benchmark quantifies that claim on synthetic applications and platforms of
growing size: the heuristic's mapping time must grow far slower than the
exhaustive baseline's, while its solution energy stays close to optimal on
the instances where the optimum is still computable.
"""

import time

import pytest

from repro.baselines.exhaustive import ExhaustiveMapper
from repro.baselines.random_mapper import RandomMapper
from repro.mapping.result import MappingStatus
from repro.spatialmapper.mapper import SpatialMapper
from repro.workloads.synthetic import SyntheticConfig, generate_application, generate_platform


def _instance(mesh: int, seed: int = 3):
    application = generate_application(
        seed=seed, config=SyntheticConfig(stages=4, period_ns=40_000.0)
    )
    platform = generate_platform(seed=seed + 50, width=mesh, height=mesh)
    return application, platform


def test_ext_scale_heuristic_close_to_optimal_on_small_instance(benchmark, fast_config):
    """On a 3x3 platform the optimum is still enumerable; the heuristic's
    energy must stay within 10% of it while touching only a handful of
    candidate placements (the exhaustive reference has to enumerate the whole
    assignment space, which is what makes it unusable at run time)."""
    application, platform = _instance(mesh=3)
    heuristic = SpatialMapper(platform, application.library, fast_config)
    exhaustive = ExhaustiveMapper(platform, application.library, fast_config,
                                  max_combinations=500_000)

    heuristic_result = benchmark(heuristic.map, application.als)

    begin = time.perf_counter()
    optimal_result = exhaustive.map(application.als)
    exhaustive_seconds = time.perf_counter() - begin

    assert heuristic_result.status is MappingStatus.FEASIBLE
    assert optimal_result.status is MappingStatus.FEASIBLE
    ratio = heuristic_result.energy_nj_per_iteration / optimal_result.energy_nj_per_iteration
    assert ratio <= 1.10
    # The exhaustive reference enumerates the whole assignment space, which is
    # already an order of magnitude more placements than the handful of
    # candidate reassignments the heuristic evaluates in step 2.
    assert exhaustive.evaluated_placements >= 20

    benchmark.extra_info["energy_ratio_vs_optimal"] = round(ratio, 4)
    benchmark.extra_info["exhaustive_seconds"] = round(exhaustive_seconds, 3)
    benchmark.extra_info["exhaustive_placements"] = exhaustive.evaluated_placements


@pytest.mark.parametrize("mesh", [3, 4, 5])
def test_ext_scale_mapping_time_grows_mildly(benchmark, fast_config, mesh):
    """Mapping time of the heuristic across growing platforms (3x3 to 5x5).

    The heuristic stays feasible and its runtime stays in interactive range
    even as the platform grows; the per-mesh timings land in the benchmark
    JSON for the scalability series of EXPERIMENTS.md."""
    application, platform = _instance(mesh=mesh)
    mapper = SpatialMapper(platform, application.library, fast_config)

    result = benchmark(mapper.map, application.als)

    assert result.status is MappingStatus.FEASIBLE
    assert benchmark.stats.stats.min < 2.0
    benchmark.extra_info["mesh"] = f"{mesh}x{mesh}"
    benchmark.extra_info["tiles"] = len(platform)
    benchmark.extra_info["energy_nj"] = round(result.energy_nj_per_iteration, 1)


def test_ext_scale_heuristic_beats_random_placement(benchmark, fast_config):
    """Across several seeds the heuristic matches or beats the best of ten
    random placements on at least three out of four instances (a single
    random-sampling win on a tiny instance is possible, a trend is not)."""
    wins = 0
    comparisons = 0

    def run_comparison():
        nonlocal wins, comparisons
        wins = 0
        comparisons = 0
        for seed in (1, 2, 3, 4):
            application, platform = _instance(mesh=4, seed=seed)
            heuristic = SpatialMapper(platform, application.library, fast_config).map(
                application.als
            )
            random_best = RandomMapper(
                platform, application.library, fast_config, trials=10, seed=seed
            ).map(application.als)
            if heuristic.status is not MappingStatus.FEASIBLE:
                continue
            comparisons += 1
            if (
                random_best.status is not MappingStatus.FEASIBLE
                or heuristic.energy_nj_per_iteration
                <= random_best.energy_nj_per_iteration + 1e-6
            ):
                wins += 1
        return wins, comparisons

    benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    assert comparisons >= 3
    assert wins >= comparisons - 1
    benchmark.extra_info["seeds_compared"] = comparisons
    benchmark.extra_info["heuristic_wins"] = wins
