"""Extension experiment `ext-dispatch-bytes` — the delta-dispatch byte claim.

The stateful process executor's entire reason to exist is that a drain's
engine-to-worker traffic should scale with *what changed*, not with how
much state is resident.  This benchmark pins that claim end to end:

* a resident population of applications is admitted once (the warm-up
  epoch: counted bootstrap snapshots, ALS blobs interned), then
* a small churn set is admitted and stopped over several steady-state
  epochs — the same drains, replayed under four engine configurations:
  serial, threaded, process with delta dispatch disabled (the PR 6
  re-snapshot-every-drain baseline) and process stateful.

Acceptance: every configuration is decision-identical (and ends on a
bit-identical platform fingerprint), the stateful steady-state epochs
ship **zero** full snapshots with every fallback accounted by reason, and
the per-epoch engine-to-worker bytes drop by at least
``$DISPATCH_BYTES_MIN_RATIO`` (default 5x; the CI smoke pins 2x on a
shrunken run) against the full-snapshot baseline.  The per-epoch byte
table is written to ``BENCH_dispatch_delta.json`` at the repository root
(``$DISPATCH_BYTES_JSON`` redirects it).
"""

import json
import os

from repro.platform.regions import RegionPartition
from repro.runtime.engine import (
    ProcessRegionExecutor,
    SerialRegionExecutor,
    ThreadedRegionExecutor,
    WorkloadEngine,
)
from repro.runtime.events import StartEvent
from repro.runtime.manager import RuntimeResourceManager
from repro.runtime.scenario import Scenario
from repro.spatialmapper.config import MapperConfig
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_application,
    generate_region_mesh,
)

REGIONS = 2        # 2x2 grid over a 10x10 mesh
REGION_SPAN = 5
PREFILL_PER_REGION = 10  # resident apps that make snapshots heavy
CHURN_PER_REGION = 1     # apps cycled through every steady-state epoch

APP_CONFIG = SyntheticConfig(
    stages=2, period_ns=100_000.0, tile_types=("GPP", "DSP")
)

FALLBACK_REASONS = (
    "full_bootstrap",
    "full_disabled",
    "full_journal_stale",
    "full_watermark_gap",
    "full_resync",
)


def build_population():
    """Per-region resident and churn application pools (deterministic)."""
    prefill, churn = [], []
    for cx in range(REGIONS):
        for cy in range(REGIONS):
            io_tile = f"io_r{cx}_{cy}"
            for index in range(PREFILL_PER_REGION):
                prefill.append(
                    generate_application(
                        7000 + 100 * (REGIONS * cx + cy) + index,
                        APP_CONFIG,
                        name=f"base_r{cx}{cy}_{index}",
                        source_tile=io_tile,
                        sink_tile=io_tile,
                    )
                )
            for index in range(CHURN_PER_REGION):
                churn.append(
                    generate_application(
                        9000 + 100 * (REGIONS * cx + cy) + index,
                        APP_CONFIG,
                        name=f"churn_r{cx}{cy}_{index}",
                        source_tile=io_tile,
                        sink_tile=io_tile,
                    )
                )
    return prefill, churn


def scenario_of(name, apps):
    scenario = Scenario(name, duration_ns=1e6)
    for index, app in enumerate(apps):
        scenario.add(
            StartEvent(time_ns=1000.0 * index, als=app.als, library=app.library)
        )
    return scenario


def worker_totals(outcome):
    """Per-run worker telemetry deltas summed across the pool (or None)."""
    workers = outcome.telemetry.workers
    if not workers:
        return None
    return {
        key: sum(values[key] for values in workers.values())
        for key in next(iter(workers.values()))
    }


def run_mode(kind, epochs, workers):
    """Replay warm-up + steady-state epochs under one engine configuration.

    Returns the per-epoch decision logs, per-epoch worker telemetry deltas
    (None for in-process executors), the final platform fingerprint, and
    the executor's resolved start method (process kinds only).
    """
    platform = generate_region_mesh(REGIONS, REGION_SPAN, name="dispatch_mesh")
    partition = RegionPartition.grid(platform, REGIONS, REGIONS)
    manager = RuntimeResourceManager(
        platform, config=MapperConfig(analysis_iterations=3), partition=partition
    )
    if kind == "serial":
        executor = SerialRegionExecutor()
    elif kind == "threaded":
        executor = ThreadedRegionExecutor(partition)
    else:
        executor = ProcessRegionExecutor(
            partition, workers=workers, delta_dispatch=(kind == "process-stateful")
        )
    engine = WorkloadEngine(manager, executor=executor)
    prefill, churn = build_population()
    logs, stats = [], []
    start_method = getattr(executor, "start_method", None)
    try:
        # Warm-up: admit the resident population (bootstrap snapshots).
        outcome = engine.run(scenario_of("dispatch-warmup", prefill))
        logs.append(outcome.decision_log())
        stats.append(worker_totals(outcome))
        # Steady state: cycle the churn set through otherwise-stable regions.
        for epoch in range(epochs):
            outcome = engine.run(scenario_of(f"dispatch-epoch-{epoch}", churn))
            logs.append(outcome.decision_log())
            stats.append(worker_totals(outcome))
            for app in churn:
                if manager.is_running(app.als.name):
                    manager.stop(app.als.name)
        fingerprint = manager.state.fingerprint()
    finally:
        if kind.startswith("process"):
            executor.close()
    return logs, stats, fingerprint, start_method


def dispatched_bytes(totals):
    """Engine-to-worker bytes of one epoch (full frames + delta frames)."""
    return totals["snapshot_bytes"] + totals["delta_dispatch_bytes"]


def test_ext_dispatch_byte_reduction(benchmark):
    epochs = int(os.environ.get("DISPATCH_BYTES_EPOCHS", "5"))
    min_ratio = float(os.environ.get("DISPATCH_BYTES_MIN_RATIO", "5.0"))
    cpu_count = os.cpu_count() or 1
    workers = min(2, cpu_count)
    results = {}

    def run_all():
        for kind in ("serial", "threaded", "process-full", "process-stateful"):
            results[kind] = run_mode(kind, epochs, workers)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Bit-identical decisions and end state across all four configurations,
    # epoch by epoch — byte savings that changed a single decision would be
    # worthless.
    serial_logs, _, serial_fp, _ = results["serial"]
    for kind in ("threaded", "process-full", "process-stateful"):
        logs, _, fingerprint, _ = results[kind]
        assert logs == serial_logs, f"{kind} diverged from the serial drain"
        assert fingerprint == serial_fp, f"{kind} ended on a different state"
    assert any(log for log in serial_logs), "the workload decided nothing"

    _, full_stats, _, _ = results["process-full"]
    _, delta_stats, _, start_method = results["process-stateful"]
    assert all(full_stats) and all(delta_stats)

    # Zero silent fallbacks, every epoch: each full dispatch is attributed
    # to exactly one counted reason.
    for totals in delta_stats + full_stats:
        attributed = sum(totals[reason] for reason in FALLBACK_REASONS)
        assert totals["full_dispatches"] == attributed, totals

    # The warm-up epoch bootstraps; from then on the stateful executor must
    # never fall back — steady state is deltas only.
    assert delta_stats[0]["full_bootstrap"] >= 1
    steady = delta_stats[1:]
    for totals in steady:
        assert totals["full_dispatches"] == 0, totals
        assert totals["delta_dispatches"] >= 1, totals

    table = [
        {
            "epoch": "warmup" if index == 0 else index - 1,
            "full_mode_bytes": dispatched_bytes(full_stats[index]),
            "stateful_bytes": dispatched_bytes(delta_stats[index]),
            "stateful_full_dispatches": int(delta_stats[index]["full_dispatches"]),
            "stateful_delta_dispatches": int(delta_stats[index]["delta_dispatches"]),
            "stateful_bytes_saved": int(delta_stats[index]["dispatch_bytes_saved"]),
        }
        for index in range(len(delta_stats))
    ]

    full_steady = sum(dispatched_bytes(t) for t in full_stats[1:])
    delta_steady = sum(dispatched_bytes(t) for t in steady)
    assert delta_steady > 0
    ratio = full_steady / delta_steady
    per_drain = {
        "full_mode_bytes_per_epoch": round(full_steady / epochs, 1),
        "stateful_bytes_per_epoch": round(delta_steady / epochs, 1),
    }

    payload = {
        "cpu_count": cpu_count,
        "workers": workers,
        "start_method": start_method,
        "regions": REGIONS * REGIONS,
        "resident_applications": REGIONS * REGIONS * PREFILL_PER_REGION,
        "churn_applications": REGIONS * REGIONS * CHURN_PER_REGION,
        "steady_epochs": epochs,
        "byte_table": table,
        "steady_state": per_drain,
        "byte_reduction_ratio": round(ratio, 2),
        "min_ratio": min_ratio,
        "decisions_identical": True,
        "silent_fallbacks": 0,
    }
    benchmark.extra_info.update(payload)

    out_path = os.environ.get("DISPATCH_BYTES_JSON")
    if not out_path:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        out_path = os.path.join(root, "BENCH_dispatch_delta.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    assert ratio >= min_ratio, payload
