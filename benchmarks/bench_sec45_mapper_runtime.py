"""Section 4.5 — runtime and memory footprint of the spatial mapper.

The paper reports that running the HiperLAN/2 example through the mapper on
an ARM926 at 100 MHz took less than 4 ms with a peak data-memory usage of
110 kB (compiled C).  This reproduction is interpreted Python on a host CPU,
so absolute numbers differ; the benchmark records the measured runtime and
peak memory so EXPERIMENTS.md can report paper-versus-measured, and asserts
the qualitative claim: the mapping decision is made in interactive time
(well below a second), i.e. cheap enough to run whenever an application
starts.
"""

import tracemalloc

from repro.spatialmapper.mapper import SpatialMapper


def test_sec45_mapper_runtime_and_memory(benchmark, case_study, fast_config):
    als, platform, library = case_study
    mapper = SpatialMapper(platform, library, fast_config)

    result = benchmark(mapper.map, als)

    assert result.is_feasible
    # Qualitative reproduction of "< 4 ms on an ARM926": the Python mapper
    # still decides in far less than a second on the host.
    assert benchmark.stats.stats.min < 1.0

    tracemalloc.start()
    mapper.map(als)
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    benchmark.extra_info["paper_runtime_ms"] = "< 4 (ARM926 @ 100 MHz, compiled C)"
    benchmark.extra_info["measured_runtime_ms"] = benchmark.stats.stats.min * 1e3
    benchmark.extra_info["paper_peak_memory_kb"] = 110
    benchmark.extra_info["measured_peak_memory_kb"] = round(peak_bytes / 1024, 1)
