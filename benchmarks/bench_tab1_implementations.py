"""Table 1 — available implementations.

Regenerates the implementation library (phase signatures, WCETs, energies)
and checks it against the values printed in the paper: the Montium variant of
every process is the cheaper one, with the energy ratios of Table 1.
"""

from repro.reporting import experiments

#: Average energy per OFDM symbol (nJ) exactly as printed in Table 1.
PAPER_ENERGIES_NJ = {
    ("prefix_removal", "ARM"): 60,
    ("prefix_removal", "MONTIUM"): 32,
    ("freq_offset_correction", "ARM"): 62,
    ("freq_offset_correction", "MONTIUM"): 33,
    ("inverse_ofdm", "ARM"): 275,
    ("inverse_ofdm", "MONTIUM"): 143,
    ("remainder", "ARM"): 140,
    ("remainder", "MONTIUM"): 76,
}


def test_tab1_implementation_library(benchmark):
    report = benchmark(experiments.experiment_table1)

    energies = report.data["energies"]
    assert len(report.data["rows"]) == 8
    for key, expected in PAPER_ENERGIES_NJ.items():
        assert energies[key] == expected
    # Qualitative claim of the table: for every process the Montium
    # implementation is roughly twice as energy-efficient as the ARM one.
    for process in ("prefix_removal", "freq_offset_correction", "inverse_ofdm", "remainder"):
        arm = energies[(process, "ARM")]
        montium = energies[(process, "MONTIUM")]
        assert montium < arm
        assert 1.5 <= arm / montium <= 2.1
    benchmark.extra_info["energies_nj"] = {f"{p}@{t}": e for (p, t), e in energies.items()}
