"""Extension experiment `ext-runtime` — run-time versus design-time mapping.

Section 1.3 of the paper argues that a design-time mapping must assume worst
case resource availability, whereas a run-time mapping can exploit the actual
platform state, so "the mapping generated at run-time may actually be cheaper
than the cheapest design-time alternative".  This benchmark plays the same
multi-application scenario through two resource managers — one backed by the
run-time spatial mapper, one backed by a design-time (frozen) mapping — and
compares admission rates.
"""

from repro.baselines.design_time import DesignTimeMapper
from repro.platform.state import PlatformState, ProcessAllocation
from repro.spatialmapper.mapper import SpatialMapper
from repro.workloads.synthetic import SyntheticConfig, generate_application, generate_platform


def _contended_instances(count: int = 4):
    """Applications plus a platform state in which some tiles are already taken."""
    platform = generate_platform(
        seed=7, width=5, height=5, tile_type_mix={"GPP": 0.7, "DSP": 0.3}
    )
    applications = [
        generate_application(seed=seed, config=SyntheticConfig(stages=4, period_ns=40_000.0))
        for seed in range(1, count + 1)
    ]
    return platform, applications


def test_ext_runtime_vs_designtime_admissions(benchmark, fast_config):
    platform, applications = _contended_instances()

    def run_comparison():
        runtime_admitted = 0
        design_admitted = 0
        for application in applications:
            design_mapper = DesignTimeMapper(platform, application.library, fast_config)
            design_mapper.precompute(application.als)
            frozen = design_mapper._design_time_mappings[application.als.name]

            # Another application has meanwhile taken two of the tiles the
            # design-time mapping relies on — the situation the paper argues
            # can only be handled with run-time knowledge.
            state = PlatformState(platform)
            blocked = [a for a in frozen.assignments if a.implementation is not None][:2]
            for index, assignment in enumerate(blocked):
                state.allocate_process(
                    ProcessAllocation("other", f"blocker{index}", assignment.tile)
                )

            design_result = design_mapper.map(application.als, state)
            runtime_result = SpatialMapper(platform, application.library, fast_config).map(
                application.als, state
            )
            design_admitted += int(design_result.is_feasible)
            runtime_admitted += int(runtime_result.is_feasible)
        return runtime_admitted, design_admitted

    runtime_admitted, design_admitted = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )

    # The paper's claim, quantified: under contention the run-time mapper keeps
    # admitting applications while the frozen design-time mapping cannot.
    assert design_admitted == 0
    assert runtime_admitted == len(applications)
    benchmark.extra_info["applications"] = len(applications)
    benchmark.extra_info["runtime_admitted"] = runtime_admitted
    benchmark.extra_info["design_time_admitted"] = design_admitted
