"""Extension experiment `ext-cross-region` — budgeted corridors vs the global lane.

The engine's serialized global lane is the reference path for admissions
whose pinned tiles span regions: an unrestricted whole-platform mapping
under every region lock.  The inter-region planner replaces it with
per-region segments plus budgeted boundary corridors under a lock subset.
This benchmark replays one generated workload — per-region traffic plus a
25% cross-region arrival mix over a 4-region mesh — through both engines
and asserts the tentpole claim:

* the planner-backed engine drains measurably faster per admission
  (``CROSS_REGION_MIN_SPEEDUP``, default >= 1.3x drain throughput), and
* regional-worker utilisation improves: cross-region admissions settle in
  the multi-region lane under lock subsets instead of the serialized
  global lane, so the share of requests the global lane must own drops.

Decision *quality* is pinned elsewhere (the differential tests in
``tests/integration/test_interregion_differential.py``); here both engines
must merely stay decision-comparable on the same offered stream (equal
request counts, admission rates within a few points).

The resulting trajectory is written to ``BENCH_cross_region.json`` at the
repository root (override with ``$CROSS_REGION_JSON``), so the perf
trajectory is tracked across PRs.  ``$CROSS_REGION_HORIZON_NS`` and
``$CROSS_REGION_MIN_SPEEDUP`` let the CI smoke step run a shrunken,
assertion-relaxed version.
"""

import json
import os

import pytest

from repro.platform.regions import GLOBAL_LANE, RegionPartition
from repro.runtime.engine import MULTI_REGION_LANE, SerialRegionExecutor, WorkloadEngine
from repro.runtime.manager import RuntimeResourceManager
from repro.spatialmapper.config import MapperConfig
from repro.workloads.arrivals import (
    PoissonArrivals,
    TrafficClass,
    cross_region_classes,
    generate_workload,
    offered_rate_per_s,
)
from repro.workloads.synthetic import SyntheticConfig, generate_region_mesh

REGIONS = 2   # 2x2 grid -> 4 regions
SPAN = 8      # routers per region edge (16x16 mesh)
SEED = 2008
HORIZON_NS = float(os.environ.get("CROSS_REGION_HORIZON_NS", 3e7))
MIN_SPEEDUP = float(os.environ.get("CROSS_REGION_MIN_SPEEDUP", 1.3))
CROSS_FRACTION = 0.25

#: Regional arrivals: light two-stage streams that stay inside their region.
REGIONAL_CONFIG = SyntheticConfig(stages=2, period_ns=100_000.0, tile_types=("GPP", "DSP"))
#: Cross-region arrivals: chip-spanning ten-stage pipelines (I/O to I/O) —
#: the deep receiver chains that actually need tiles from several regions.
CROSS_CONFIG = SyntheticConfig(stages=10, period_ns=100_000.0, tile_types=("GPP", "DSP"))

REGIONAL_RATE_PER_S = 1800.0  # aggregate over the four per-region classes
CROSS_RATE_PER_S = REGIONAL_RATE_PER_S * CROSS_FRACTION / (1.0 - CROSS_FRACTION)


def traffic_mix():
    """Four per-region classes plus cross-region pairs at a 25% arrival share."""
    classes = []
    for cx in range(REGIONS):
        for cy in range(REGIONS):
            io_tile = f"io_r{cx}_{cy}"
            classes.append(
                TrafficClass(
                    f"r{cx}_{cy}",
                    PoissonArrivals(rate_per_s=REGIONAL_RATE_PER_S / (REGIONS * REGIONS)),
                    config=REGIONAL_CONFIG,
                    source_tile=io_tile,
                    sink_tile=io_tile,
                    hold_range_ns=(4e6, 9e6),
                    admission_window_ns=6e6,
                )
            )
    classes.extend(
        cross_region_classes(
            REGIONS,
            CROSS_RATE_PER_S,
            config=CROSS_CONFIG,
            admission_window_ns=6e6,
            hold_range_ns=(4e6, 9e6),
        )
    )
    return classes


def run_config(workload, *, cross_region_planner):
    """Replay the workload on a fresh manager, with or without the planner."""
    platform = generate_region_mesh(REGIONS, SPAN, name="cross_region_mesh")
    partition = RegionPartition.grid(platform, REGIONS, REGIONS)
    manager = RuntimeResourceManager(
        platform,
        config=MapperConfig(analysis_iterations=2),
        partition=partition,
        cross_region_planner=cross_region_planner,
    )
    engine = WorkloadEngine(
        manager, executor=SerialRegionExecutor(), park_rejections=True
    )
    return engine.run(workload)


def lane_summary(outcome):
    """Per-lane settled counts of one run."""
    return {
        lane: {
            "admitted": counters.admitted,
            "rejected": counters.rejected,
            "expired": counters.expired,
            "settled": counters.settled(),
        }
        for lane, counters in sorted(outcome.telemetry.lanes.items())
    }


ROUNDS = int(os.environ.get("CROSS_REGION_ROUNDS", 3))


def test_ext_cross_region_corridors(benchmark):
    classes = traffic_mix()
    workload = generate_workload(SEED, HORIZON_NS, classes, name="cross-region-mix")
    results = {}

    def run_all():
        # Decisions are deterministic; wall clock is not.  Interleave the
        # configurations and keep each one's best round, so a scheduling
        # hiccup on a loaded CI machine cannot flip the verdict.
        for _ in range(ROUNDS):
            for label, planner in (("global", False), ("planner", True)):
                outcome = run_config(workload, cross_region_planner=planner)
                best = results.get(label)
                if best is None or outcome.drain_wall_s < best.drain_wall_s:
                    results[label] = outcome
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    baseline, planner = results["global"], results["planner"]

    # Same offered stream, comparable decisions: the planner must not admit
    # a different workload to look fast.
    assert planner.decided == baseline.decided > 0
    assert abs(planner.admission_rate - baseline.admission_rate) <= 0.05, (
        planner.admission_rate,
        baseline.admission_rate,
    )

    comparison = {}
    for label, outcome in results.items():
        per_admission_ms = outcome.drain_wall_s / outcome.decided * 1e3
        comparison[label] = {
            "decided": outcome.decided,
            "admitted": len(outcome.admitted),
            "admission_rate": round(outcome.admission_rate, 4),
            "drain_wall_ms": round(outcome.drain_wall_s * 1e3, 3),
            "per_admission_wall_ms": round(per_admission_ms, 4),
            "drain_throughput_per_s": round(outcome.decided / outcome.drain_wall_s, 2),
            "lanes": lane_summary(outcome),
        }
    speedup = (
        comparison["planner"]["drain_throughput_per_s"]
        / comparison["global"]["drain_throughput_per_s"]
    )
    benchmark.extra_info["comparison"] = comparison
    benchmark.extra_info["drain_speedup"] = round(speedup, 3)
    benchmark.extra_info["regions"] = REGIONS * REGIONS
    benchmark.extra_info["cross_fraction"] = CROSS_FRACTION

    # The multi-region lane must actually carry the cross traffic...
    planner_lanes = comparison["planner"]["lanes"]
    baseline_lanes = comparison["global"]["lanes"]
    assert planner_lanes.get(MULTI_REGION_LANE, {}).get("admitted", 0) > 0, planner_lanes
    # ...and regional-worker utilisation improves: the serialized global
    # lane owns a strictly smaller share of the settled requests.
    global_share_baseline = baseline_lanes.get(GLOBAL_LANE, {}).get("settled", 0)
    global_share_planner = planner_lanes.get(GLOBAL_LANE, {}).get("settled", 0)
    assert global_share_planner < global_share_baseline, (
        global_share_planner,
        global_share_baseline,
    )

    # The tentpole target: >= 1.3x drain throughput at 4 regions with a 25%
    # cross-region arrival mix (relaxed via $CROSS_REGION_MIN_SPEEDUP for
    # the CI smoke run on shrunken horizons).
    assert speedup >= MIN_SPEEDUP, comparison

    payload = {
        "regions": REGIONS * REGIONS,
        "span": SPAN,
        "horizon_ns": HORIZON_NS,
        "offered_rate_per_s": round(offered_rate_per_s(classes), 1),
        "cross_fraction": CROSS_FRACTION,
        "drain_speedup": round(speedup, 3),
        "comparison": comparison,
    }
    # The trajectory is tracked across PRs at the repository root; shrunken
    # runs (smoke env overrides, no explicit redirect) must not overwrite it
    # with non-representative numbers.
    out_path = os.environ.get("CROSS_REGION_JSON")
    shrunken = bool(
        os.environ.get("CROSS_REGION_HORIZON_NS")
        or os.environ.get("CROSS_REGION_MIN_SPEEDUP")
    )
    if not out_path and not shrunken:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        out_path = os.path.join(root, "BENCH_cross_region.json")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    raise SystemExit(pytest.main([__file__, "-q"]))
