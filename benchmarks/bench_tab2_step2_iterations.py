"""Table 2 — processor-assignment iterations in step 2.

This is the paper's central quantitative artefact: starting from the greedy
first-fit assignment (communication cost 11), the local search of step 2
evaluates an ARM swap (no improvement, reverted at cost 11), accepts the
Montium swap (cost 9) and finally accepts the ARM swap (cost 7), after which
no further choice improves the mapping.  The benchmark regenerates the full
iteration table and asserts the exact trajectory, and times steps 1+2 (the
part of the mapper the table describes).
"""

from repro.reporting import experiments

#: The paper's cost column: initial assignment plus the three listed iterations.
PAPER_COST_TRAJECTORY = [11.0, 11.0, 9.0, 7.0]

#: The paper's remark column for the three listed iterations.
PAPER_REMARKS = ["No improvement, revert", "Improvement, keep", "Improvement, keep"]


def test_tab2_step2_iterations(benchmark):
    report = benchmark(experiments.experiment_table2)

    assert report.data["cost_trajectory"] == PAPER_COST_TRAJECTORY
    assert report.data["initial_cost"] == 11.0
    assert report.data["final_cost"] == 7.0

    rows = report.data["rows"]
    # Row 0 is the initial greedy assignment of Table 2.
    assert rows[0][1:5] == ("Pfx.rem.", "Frq.off.", "Inv.OFDM", "Rem.")
    # Rows 1-3 are the three iterations, with the paper's remarks.
    assert [row[6] for row in rows[1:4]] == PAPER_REMARKS
    # The final row of the table reads "No further choices".
    assert rows[-1][6] == "No further choices"
    # Final assignment: ARM1=Frq.off., ARM2=Pfx.rem., M1=Rem., M2=Inv.OFDM.
    assert rows[3][1:5] == ("Frq.off.", "Pfx.rem.", "Rem.", "Inv.OFDM")

    benchmark.extra_info["cost_trajectory"] = report.data["cost_trajectory"]
    benchmark.extra_info["iterations_evaluated"] = report.data["iterations_evaluated"]
