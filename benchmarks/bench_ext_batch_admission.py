"""Extension experiment `ext-batch` — batch admission at run time.

The paper's run-time premise only scales to many co-running applications if
an admission decision stays cheap while the platform fills up.  This
benchmark drives :meth:`RuntimeResourceManager.start_many` over a workload of
dozens of synthetic applications on a large mesh and asserts the two
properties the incremental resource-accounting core guarantees:

* the batch admits a production-sized workload (>= 50 applications) with
  per-application accept/reject decisions in one call, and
* the per-admission mapping time does not grow with the allocation-list
  lengths of the already-running applications — resource queries hit the
  O(1) cached aggregates, so the 10 admissions onto a platform already
  hosting ~50 applications cost about the same as the first 10 onto an empty
  platform.

The *fill sweep* (`test_ext_admission_fill_sweep`) extends this to the
fragmentation/heterogeneity regime the staged pipeline targets: a churny
workload (starts interleaved with stops and re-starts) over a region-sharded
heterogeneous mesh, measured at rising fill levels, for four pipeline
configurations — the PR 1 baseline (no sharding, no caching), caching only,
sharding only, and sharding + caching.  Per-admission latency and admission
rate per fill band are attached as a JSON-serialisable trajectory in
``extra_info`` (and optionally written to ``$ADMISSION_SWEEP_JSON``).
``$ADMISSION_SWEEP_CONFIGS`` (comma-separated labels) restricts the sweep to
a subset — the CI smoke step runs one tiny configuration this way; the
cross-configuration assertions only fire when their configurations ran.

The *rescue sweep* (`test_ext_rescue_lane_fill_sweep`) replays one churny
schedule on a multi-slot, memory-tight mesh with the stochastic rescue lane
off and on, and asserts the lane's admission-rate gain in the high-fill band
(``$RESCUE_MIN_GAIN`` relaxes the floor, ``$RESCUE_ARRIVALS`` shrinks the
stream for CI, and the trajectory lands in ``BENCH_rescue_lane.json``).

Two event-driven companions exercise the workload engine on the same
platform: `test_ext_engine_drain_parallelism` replays one generated
workload through the unsharded pipeline, the sharded serial executor and
the sharded threaded (worker-per-region) executor — asserting the drains
are decision-identical and that region-scoped admission over the 4-region
partition delivers a measurable per-admission wall-clock improvement — and
`test_ext_admission_rate_vs_offered_load` sweeps the offered load of a
Poisson mix to produce the paper-style admission-rate-versus-load curve
(optionally written to ``$ADMISSION_LOAD_CURVE_JSON``).
"""

import itertools
import json
import os
import random
from collections import deque
from dataclasses import replace

import pytest

from repro.obs import ObsConfig
from repro.platform.regions import RegionPartition
from repro.runtime.admission_control import GovernorConfig, LoadSheddingGovernor
from repro.runtime.engine import (
    ProcessRegionExecutor,
    SerialRegionExecutor,
    ThreadedRegionExecutor,
    WorkloadEngine,
)
from repro.runtime.manager import RuntimeResourceManager
from repro.spatialmapper.config import MapperConfig
from repro.workloads.arrivals import (
    PoissonArrivals,
    TrafficClass,
    generate_workload,
    offered_rate_per_s,
    priority_overload_mix,
)
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_application,
    generate_platform,
    generate_region_mesh,
    generate_scenario,
)

APPLICATIONS = 60
MIN_ADMITTED = 50


@pytest.fixture(scope="module")
def workload():
    """Sixty small streaming applications and a 12x12 mesh to host them."""
    config = SyntheticConfig(stages=2, period_ns=100_000.0)
    applications = generate_scenario(seed=9, application_count=APPLICATIONS, config=config)
    platform = generate_platform(seed=21, width=12, height=12)
    return applications, platform


def test_ext_batch_start_many_admits_workload(benchmark, workload):
    applications, platform = workload
    outcomes = {}

    def run_batch():
        manager = RuntimeResourceManager(
            platform, config=MapperConfig(analysis_iterations=3), require_feasible=True
        )
        outcome = manager.start_many([(app.als, app.library) for app in applications])
        outcomes["last"] = (manager, outcome)
        return outcome

    benchmark.pedantic(run_batch, rounds=1, iterations=1)
    manager, outcome = outcomes["last"]

    admitted = outcome.admitted
    assert len(outcome.decisions) == APPLICATIONS
    assert len(admitted) >= MIN_ADMITTED
    assert all(manager.is_running(d.application) for d in admitted)

    # Per-admission mapping time must not trend upward as the platform fills:
    # with O(1) aggregate queries the cost of an admission depends on the
    # application and platform size, not on how many applications (and how
    # many allocation-list entries) are already resident.
    times = [d.mapping_runtime_s for d in outcome.decisions]
    first = sum(times[:10]) / 10
    last = sum(times[-10:]) / 10
    assert last <= 3.0 * first, (
        f"per-admission time grew from {first * 1e3:.2f} ms to {last * 1e3:.2f} ms "
        "while the platform filled up"
    )

    benchmark.extra_info["applications"] = APPLICATIONS
    benchmark.extra_info["admitted"] = len(admitted)
    benchmark.extra_info["admission_rate"] = round(outcome.admission_rate, 3)
    benchmark.extra_info["first10_admission_ms"] = round(first * 1e3, 3)
    benchmark.extra_info["last10_admission_ms"] = round(last * 1e3, 3)
    benchmark.extra_info["growth_ratio"] = round(last / first, 3) if first else None


def test_ext_batch_all_or_nothing_rolls_back(benchmark, workload):
    """An all-or-nothing batch that cannot fully fit must leave the platform
    bit-identical to an empty one — the transactional commit path."""
    applications, _ = workload
    # A deliberately tiny platform so the batch cannot fit entirely.
    small = generate_platform(seed=33, width=3, height=3)

    def run_batch():
        manager = RuntimeResourceManager(
            small, config=MapperConfig(analysis_iterations=3), require_feasible=True
        )
        outcome = manager.start_many(
            [(app.als, app.library) for app in applications[:12]], all_or_nothing=True
        )
        return manager, outcome

    manager, outcome = benchmark.pedantic(run_batch, rounds=1, iterations=1)
    assert len(outcome.rejected) >= 1
    assert manager.state.occupied_tiles() == ()
    assert manager.state.link_loads() == {}
    assert not manager.running_applications
    benchmark.extra_info["attempted"] = len(outcome.decisions)
    benchmark.extra_info["first_rejection"] = outcome.rejected[0].application


# --------------------------------------------------------------------------- #
# Fill-level sweep: fragmentation/heterogeneity, sharding and caching
# --------------------------------------------------------------------------- #

SWEEP_REGIONS = 2  # 2x2 grid
SWEEP_SPAN = 4     # routers per region edge (8x8 mesh)
APPS_PER_REGION = 9


def build_sweep_platform():
    """An 8x8 heterogeneous mesh with one I/O tile per 4x4 region."""
    return generate_region_mesh(SWEEP_REGIONS, SWEEP_SPAN, name="sweep_mesh")


def build_sweep_workload():
    """Per-region pools of two-stage applications pinned to their region's I/O."""
    config = SyntheticConfig(stages=2, period_ns=100_000.0, tile_types=("GPP", "DSP"))
    pools = {}
    for cx in range(SWEEP_REGIONS):
        for cy in range(SWEEP_REGIONS):
            region = f"r{cx}_{cy}"
            io_tile = f"io_{region}"
            pools[region] = [
                generate_application(
                    1000 * cx + 100 * cy + index,
                    config,
                    name=f"{region}_app{index}",
                    source_tile=io_tile,
                    sink_tile=io_tile,
                )
                for index in range(APPS_PER_REGION)
            ]
    return pools


def churn_schedule(pools):
    """A deterministic churny schedule: (op, region, app) triples.

    Three admission waves per region interleaved round-robin; between waves,
    the most recent admissions are stopped in exact reverse order and then
    re-admitted in the original order.  The unwinding returns the platform
    (and each region) to fingerprints that were already seen when those
    applications were first mapped, so their re-admissions are exactly the
    recurring questions the mapper cache answers — while the stop/start
    holes exercise fragmentation on the way.
    """
    regions = sorted(pools)
    ops = []

    def admit_wave(indices):
        for index in indices:
            for region in regions:
                ops.append(("start", region, pools[region][index]))

    def churn(indices):
        for index in reversed(indices):
            for region in reversed(regions):
                ops.append(("stop", region, pools[region][index]))
        for index in indices:
            for region in regions:
                ops.append(("start", region, pools[region][index]))

    admit_wave(range(0, 3))
    churn(range(1, 3))
    admit_wave(range(3, 6))
    churn(range(4, 6))
    admit_wave(range(6, APPS_PER_REGION))
    churn(range(6, APPS_PER_REGION))
    return ops


def slot_fill(manager):
    """Fraction of processing slots currently occupied."""
    tiles = manager.platform.processing_tiles()
    capacity = sum(tile.resources.max_processes for tile in tiles)
    used = sum(manager.state.used_process_slots(tile.name) for tile in tiles)
    return used / capacity if capacity else 0.0


def run_sweep_config(label, partition_regions, cache_size):
    """Run the churn schedule under one pipeline configuration."""
    platform = build_sweep_platform()
    partition = (
        RegionPartition.grid(platform, partition_regions, partition_regions)
        if partition_regions
        else None
    )
    manager = RuntimeResourceManager(
        platform,
        config=MapperConfig(analysis_iterations=3),
        partition=partition,
        mapper_cache_size=cache_size,
    )
    pools = build_sweep_workload()
    samples = []
    for op, region, app in churn_schedule(pools):
        if op == "stop":
            if manager.is_running(app.als.name):
                manager.stop(app.als.name)
            continue
        fill = slot_fill(manager)
        decision = manager.admit(app.als, library=app.library)
        samples.append(
            {
                "config": label,
                "fill": round(fill, 4),
                "region": region,
                "admitted": decision.admitted,
                "latency_ms": decision.mapping_runtime_s * 1e3,
            }
        )
    cache = manager.pipeline.cache
    stats = {
        "hits": cache.stats.hits if cache else 0,
        "misses": cache.stats.misses if cache else 0,
    }
    return samples, stats


def band_of(fill):
    """Coarse fill band: low (< 1/3), mid, or high (>= 2/3)."""
    if fill < 1 / 3:
        return "low"
    if fill < 2 / 3:
        return "mid"
    return "high"


def summarise(samples, band=band_of):
    """Per-fill-band admission rate and latency (mean + noise-robust median)."""
    bands = {}
    for sample in samples:
        bands.setdefault(band(sample["fill"]), []).append(sample)
    summary = {}
    for band, rows in bands.items():
        latencies = sorted(row["latency_ms"] for row in rows)
        middle = len(latencies) // 2
        median = (
            latencies[middle]
            if len(latencies) % 2
            else (latencies[middle - 1] + latencies[middle]) / 2
        )
        summary[band] = {
            "admissions": len(rows),
            "admitted": sum(1 for row in rows if row["admitted"]),
            "mean_latency_ms": sum(latencies) / len(latencies),
            "median_latency_ms": median,
        }
    return summary


SWEEP_CONFIGS = [
    ("baseline", 0, 0),           # PR 1: no sharding, no caching
    ("cached", 0, 128),           # fingerprint-keyed mapper cache only
    ("sharded", SWEEP_REGIONS, 0),        # region-scoped pipeline only
    ("sharded+cached", SWEEP_REGIONS, 128),
]


def selected_sweep_configs():
    """The sweep configurations to run (CI smoke narrows via env var)."""
    selection = os.environ.get("ADMISSION_SWEEP_CONFIGS")
    if not selection:
        return SWEEP_CONFIGS
    wanted = {label.strip() for label in selection.split(",") if label.strip()}
    unknown = wanted - {label for label, _, _ in SWEEP_CONFIGS}
    assert not unknown, f"unknown sweep configs requested: {sorted(unknown)}"
    return [entry for entry in SWEEP_CONFIGS if entry[0] in wanted]


def test_ext_admission_fill_sweep(benchmark):
    configs = selected_sweep_configs()
    results = {}

    def run_all():
        for label, regions, cache_size in configs:
            samples, stats = run_sweep_config(label, regions, cache_size)
            results[label] = {
                "samples": samples,
                "cache": stats,
                "summary": summarise(samples),
            }
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    trajectory = [
        {
            "config": label,
            "band": band,
            **{key: round(value, 4) for key, value in row.items()},
        }
        for label, data in results.items()
        for band, row in sorted(data["summary"].items())
    ]
    benchmark.extra_info["trajectory"] = trajectory
    for label, data in results.items():
        benchmark.extra_info[f"{label}_cache"] = data["cache"]

    # Every configuration processed the same schedule.
    counts = {label: len(data["samples"]) for label, data in results.items()}
    assert len(set(counts.values())) == 1, counts

    improvement = None
    if "baseline" in results and "sharded+cached" in results:
        baseline = results["baseline"]["summary"]
        pipeline = results["sharded+cached"]["summary"]
        assert "high" in baseline and "high" in pipeline, (baseline, pipeline)

        # The workload must actually stress the platform: the high band
        # should still admit applications under every configuration.
        assert pipeline["high"]["admitted"] >= 1
        assert pipeline["high"]["admitted"] >= baseline["high"]["admitted"] * 0.75

        # Acceptance: per-admission latency stays flat (or improves) as the
        # fill level rises for the sharded+cached pipeline, and — with the
        # platform split into >= 4 regions — *improves measurably* on the
        # PR 1 baseline at high fill.  Medians with generous factors: single
        # stray scheduling hiccups on a loaded CI machine must not flip the
        # verdict (the real effect — cache hits plus region-local search —
        # is a multiple, not a few percent).
        assert (
            pipeline["high"]["median_latency_ms"]
            <= 2.5 * pipeline["low"]["median_latency_ms"]
        ), pipeline
        assert SWEEP_REGIONS * SWEEP_REGIONS >= 4
        improvement = (
            baseline["high"]["median_latency_ms"]
            / pipeline["high"]["median_latency_ms"]
        )
        benchmark.extra_info["high_fill_improvement"] = round(improvement, 3)
        assert improvement >= 1.1, (pipeline["high"], baseline["high"])

    # The trajectory is tracked across PRs at the repository root; an env
    # var can redirect it (the CI smoke step keeps the tracked file as-is).
    out_path = os.environ.get("ADMISSION_SWEEP_JSON")
    if not out_path and not os.environ.get("ADMISSION_SWEEP_CONFIGS"):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        out_path = os.path.join(root, "BENCH_admission_fill_sweep.json")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(
                {label: data["summary"] for label, data in results.items()}
                | {
                    "samples": [s for d in results.values() for s in d["samples"]],
                    "high_fill_improvement": improvement,
                },
                handle,
                indent=2,
            )
            handle.write("\n")

    # The cache must actually serve hits under churn.
    for label in ("sharded+cached", "cached"):
        if label in results:
            assert results[label]["cache"]["hits"] > 0


# --------------------------------------------------------------------------- #
# Event-driven engine: parallel drain comparison and offered-load curve
# --------------------------------------------------------------------------- #

ENGINE_SEED = 42
ENGINE_HORIZON_NS = 20e6


def engine_traffic_classes(load_factor=1.0):
    """One Poisson class per region, pinned to that region's I/O tile."""
    config = SyntheticConfig(stages=2, period_ns=100_000.0, tile_types=("GPP", "DSP"))
    classes = []
    for cx in range(SWEEP_REGIONS):
        for cy in range(SWEEP_REGIONS):
            io_tile = f"io_r{cx}_{cy}"
            classes.append(
                TrafficClass(
                    f"r{cx}_{cy}",
                    PoissonArrivals(rate_per_s=400.0),
                    config=config,
                    source_tile=io_tile,
                    sink_tile=io_tile,
                    hold_range_ns=(3e6, 8e6),
                    admission_window_ns=5e6,
                ).scaled(load_factor)
            )
    return classes


def run_engine_config(
    workload, *, sharded, executor_kind, park=True, workers=None, info=None, obs=None
):
    """Replay one workload on a fresh manager under one engine configuration.

    ``info``, when given, receives executor facts the outcome does not carry
    (currently the process executor's resolved ``start_method``).  ``obs``
    is forwarded to the engine (``None`` = observability fully off).
    """
    platform = build_sweep_platform()
    partition = (
        RegionPartition.grid(platform, SWEEP_REGIONS, SWEEP_REGIONS)
        if sharded
        else None
    )
    manager = RuntimeResourceManager(
        platform, config=MapperConfig(analysis_iterations=3), partition=partition
    )
    if executor_kind == "threaded":
        executor = ThreadedRegionExecutor(partition)
    elif executor_kind == "process":
        executor = ProcessRegionExecutor(partition, workers=workers)
    else:
        executor = SerialRegionExecutor()
    if info is not None:
        info["start_method"] = getattr(executor, "start_method", None)
    engine = WorkloadEngine(
        manager, executor=executor, park_rejections=park, obs=obs
    )
    try:
        return engine.run(workload)
    finally:
        if executor_kind == "process":
            executor.close()


def test_ext_engine_drain_parallelism(benchmark):
    """Serial vs parallel drain of one event stream over >= 4 regions.

    Pins the two halves of the tentpole claim: the threaded worker-per-region
    executor is decision-identical to the serial drain, and region-scoped
    admission over the 4-region partition is measurably cheaper per
    admission (wall clock) than the unsharded pipeline on the same stream.
    (CPython threads do not speed up the pure-Python mapper — the threaded
    figures are recorded to show the drains match, not to win.)
    """
    workload = generate_workload(
        ENGINE_SEED,
        ENGINE_HORIZON_NS,
        engine_traffic_classes(load_factor=3.0),
        name="engine-drain",
    )
    results = {}

    def run_all():
        results["unsharded"] = run_engine_config(
            workload, sharded=False, executor_kind="serial"
        )
        results["serial"] = run_engine_config(
            workload, sharded=True, executor_kind="serial"
        )
        results["threaded"] = run_engine_config(
            workload, sharded=True, executor_kind="threaded"
        )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # The parallel drain decides exactly like the serial drain.
    assert results["serial"].decision_log() == results["threaded"].decision_log()
    assert results["serial"].departures == results["threaded"].departures

    comparison = {}
    for label, outcome in results.items():
        assert outcome.decided > 0
        comparison[label] = {
            "decided": outcome.decided,
            "admitted": len(outcome.admitted),
            "admission_rate": round(outcome.admission_rate, 4),
            "drain_wall_ms": round(outcome.drain_wall_s * 1e3, 3),
            "per_admission_wall_ms": round(
                outcome.drain_wall_s / outcome.decided * 1e3, 4
            ),
            "mapping_runtime_ms": round(outcome.mapping_runtime_s * 1e3, 3),
        }
    benchmark.extra_info["drain_comparison"] = comparison
    benchmark.extra_info["regions"] = SWEEP_REGIONS * SWEEP_REGIONS

    # Region scoping must pay: a measurable per-admission wall-clock
    # improvement over the unsharded pipeline with >= 4 regions (the
    # locally measured effect is ~1.5x; 1.1x keeps CI noise out).
    speedup = (
        comparison["unsharded"]["per_admission_wall_ms"]
        / comparison["serial"]["per_admission_wall_ms"]
    )
    benchmark.extra_info["sharded_speedup"] = round(speedup, 3)
    assert speedup >= 1.1, comparison

    # The threaded drain must not collapse under lock/GIL overhead.
    assert (
        comparison["threaded"]["per_admission_wall_ms"]
        <= 2.0 * comparison["serial"]["per_admission_wall_ms"]
    ), comparison

    out_path = os.environ.get("ADMISSION_SWEEP_JSON")
    if out_path and os.path.exists(out_path):
        with open(out_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["drain_comparison"] = comparison
        payload["sharded_speedup"] = speedup
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)


def test_ext_process_drain_throughput(benchmark):
    """Serial vs threaded vs process drain of one stream over 4 regions.

    The process executor is the one back-end the GIL cannot serialize:
    region lanes ship out as snapshots, decide in worker processes, and
    fold back as allocation deltas.  This benchmark replays one generated
    4-region workload through all three executors, asserts they are
    decision-identical, and records the drain throughput comparison in
    ``BENCH_process_drain.json`` at the repository root (with
    ``os.cpu_count()`` — the speedup claim only makes sense on a
    multi-core runner).

    The speedup floor defaults to 1.8x on runners with >= 4 cores and is
    waived elsewhere; ``$PROCESS_DRAIN_MIN_SPEEDUP`` overrides it either
    way (the CI smoke step pins ``0`` — it asserts the protocol, not the
    hardware).  The artifact records the floor and the waiver reason when
    one applied, plus the pool's resolved start method and the average
    bytes of one snapshot frame vs one delta frame, so the JSON states
    exactly what was (and was not) measured.
    """
    cpu_count = os.cpu_count() or 1
    workers = int(os.environ.get("PROCESS_DRAIN_WORKERS", "0")) or min(4, cpu_count)
    workload = generate_workload(
        ENGINE_SEED,
        ENGINE_HORIZON_NS,
        engine_traffic_classes(load_factor=3.0),
        name="process-drain",
    )
    results = {}
    process_info = {}
    obs_walls = {}

    def run_all():
        results["serial"] = run_engine_config(
            workload, sharded=True, executor_kind="serial"
        )
        results["threaded"] = run_engine_config(
            workload, sharded=True, executor_kind="threaded"
        )
        # The observability cost columns: the same process drain with the
        # obs layer absent, constructed-but-disabled, and fully on at
        # sample rate 1.0.  Each configuration runs twice, interleaved, and
        # the overhead comparison takes each configuration's best drain —
        # machine-load drift hits all three alike, a one-sided spike only
        # one, so best-of-interleaved is the noise-robust estimator.
        obs_configs = (
            ("process", None),
            ("process_obs_disabled", ObsConfig(enabled=False)),
            ("process_obs_on", ObsConfig(sample_rate=1.0)),
        )
        for _ in range(2):
            for label, obs in obs_configs:
                outcome = run_engine_config(
                    workload,
                    sharded=True,
                    executor_kind="process",
                    workers=workers,
                    info=process_info if label == "process" else None,
                    obs=obs,
                )
                results[label] = outcome
                obs_walls.setdefault(label, []).append(outcome.drain_wall_s)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Identical decisions across all three executors — the differential
    # suites pin this on small workloads; the benchmark re-pins it at scale.
    for kind in ("threaded", "process", "process_obs_disabled", "process_obs_on"):
        assert results["serial"].decision_log() == results[kind].decision_log()
        assert results["serial"].departures == results[kind].departures
    # The obs-on run must actually have traced and metered the drain.
    assert results["process_obs_on"].spans
    assert results["process_obs_on"].metrics is not None
    assert results["process_obs_disabled"].spans == []

    comparison = {}
    for label, outcome in results.items():
        assert outcome.decided > 0
        comparison[label] = {
            "decided": outcome.decided,
            "admitted": len(outcome.admitted),
            "drain_wall_ms": round(outcome.drain_wall_s * 1e3, 3),
            "per_admission_wall_ms": round(
                outcome.drain_wall_s / outcome.decided * 1e3, 4
            ),
        }
    worker_stats = results["process"].telemetry.workers
    speedup = (
        comparison["serial"]["drain_wall_ms"] / comparison["process"]["drain_wall_ms"]
    )

    # Per-dispatch byte honesty: what one full (snapshot) frame and one
    # delta frame actually cost on the wire, averaged over the run.
    full_dispatches = sum(w["full_dispatches"] for w in worker_stats.values())
    delta_dispatches = sum(w["delta_dispatches"] for w in worker_stats.values())
    snapshot_bytes = sum(w["snapshot_bytes"] for w in worker_stats.values())
    delta_bytes = sum(w["delta_dispatch_bytes"] for w in worker_stats.values())
    dispatch_bytes = {
        "full_dispatches": int(full_dispatches),
        "delta_dispatches": int(delta_dispatches),
        "snapshot_bytes_total": int(snapshot_bytes),
        "delta_bytes_total": int(delta_bytes),
        "snapshot_bytes_per_full_dispatch": round(
            snapshot_bytes / full_dispatches, 1
        )
        if full_dispatches
        else None,
        "delta_bytes_per_delta_dispatch": round(delta_bytes / delta_dispatches, 1)
        if delta_dispatches
        else None,
    }

    # The speedup floor and, when it is waived, the reason — recorded in
    # the artifact so a green run on a starved runner cannot masquerade as
    # a measured parallel win.
    floor_override = os.environ.get("PROCESS_DRAIN_MIN_SPEEDUP")
    min_speedup = float(
        floor_override
        if floor_override is not None
        else ("1.8" if cpu_count >= 4 else "0")
    )
    if floor_override is not None:
        waiver = f"floor overridden via PROCESS_DRAIN_MIN_SPEEDUP={floor_override}"
    elif cpu_count < 4:
        waiver = (
            f"cpu_count={cpu_count} < 4: parallel speedup not expected on "
            "this runner, protocol asserted only"
        )
    else:
        waiver = None

    # Observability cost, against the obs-off process drain: the disabled
    # layer must be near-free (CI pins <= 3%) and full-sampling tracing +
    # metrics must stay within the documented <= 5% budget.  Shared runners
    # are noisy, so both floors are env-overridable and an absolute slack
    # (default 25 ms) keeps sub-millisecond deltas from failing on jitter.
    baseline_wall_ms = min(obs_walls["process"]) * 1e3
    slack_ms = float(os.environ.get("PROCESS_DRAIN_OBS_SLACK_MS", "50"))
    max_off_pct = float(os.environ.get("PROCESS_DRAIN_MAX_OBS_OFF_OVERHEAD_PCT", "3"))
    max_on_pct = float(os.environ.get("PROCESS_DRAIN_MAX_OBS_OVERHEAD_PCT", "5"))
    # Like the speedup floor: on a starved runner (fewer cores than the
    # engine + workers need) drain wall-clock is scheduler noise, so the
    # overhead floors are recorded but waived, with the reason in the
    # artifact.  $PROCESS_DRAIN_OBS_STRICT=1 forces them anywhere.
    if os.environ.get("PROCESS_DRAIN_OBS_STRICT"):
        overhead_waiver = None
    elif cpu_count < 4:
        overhead_waiver = (
            f"cpu_count={cpu_count} < 4: drain wall-clock is scheduler noise "
            "on this runner, overhead recorded but not asserted"
        )
    else:
        overhead_waiver = None
    obs_overhead = {
        "baseline_drain_wall_ms": round(baseline_wall_ms, 3),
        "slack_ms": slack_ms,
        "repeats": len(obs_walls["process"]),
        "overhead_waiver": overhead_waiver,
    }
    for label, max_pct in (
        ("process_obs_disabled", max_off_pct),
        ("process_obs_on", max_on_pct),
    ):
        wall_ms = min(obs_walls[label]) * 1e3
        delta_ms = wall_ms - baseline_wall_ms
        pct = delta_ms / baseline_wall_ms * 100.0 if baseline_wall_ms else 0.0
        obs_overhead[label] = {
            "drain_wall_ms": round(wall_ms, 3),
            "all_drain_wall_ms": [round(w * 1e3, 3) for w in obs_walls[label]],
            "overhead_ms": round(delta_ms, 3),
            "overhead_pct": round(pct, 2),
            "max_overhead_pct": max_pct,
        }

    payload = {
        "cpu_count": cpu_count,
        "workers": workers,
        "start_method": process_info.get("start_method"),
        "regions": SWEEP_REGIONS * SWEEP_REGIONS,
        "comparison": comparison,
        "process_speedup_vs_serial": round(speedup, 3),
        "min_speedup": min_speedup,
        "speedup_waiver": waiver,
        "dispatch_bytes": dispatch_bytes,
        "obs_overhead": obs_overhead,
        "worker_stats": {
            name: {key: round(value, 6) for key, value in values.items()}
            for name, values in worker_stats.items()
        },
    }
    benchmark.extra_info.update(payload)

    out_path = os.environ.get("PROCESS_DRAIN_JSON")
    if not out_path:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        out_path = os.path.join(root, "BENCH_process_drain.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    # The protocol must have actually shipped work to the workers.
    assert worker_stats and sum(w["requests"] for w in worker_stats.values()) > 0
    assert speedup >= min_speedup, payload
    if overhead_waiver is None:
        for label in ("process_obs_disabled", "process_obs_on"):
            entry = obs_overhead[label]
            assert (
                entry["overhead_pct"] <= entry["max_overhead_pct"]
                or entry["overhead_ms"] <= slack_ms
            ), payload


# --------------------------------------------------------------------------- #
# Overload sweep: the load-shedding governor under 8x offered load
# --------------------------------------------------------------------------- #

OVERLOAD_FACTOR = 8.0
HIGH_PRIORITY = 2
GOVERNOR_CONFIG = GovernorConfig(
    rate_floor=0.5, resume_margin=0.1, window=32, min_samples=8
)


def overload_workload(horizon_ns):
    """A two-tier priority mix at 8x a comfortably-admissible base load."""
    config = SyntheticConfig(stages=2, period_ns=100_000.0, tile_types=("GPP", "DSP"))
    classes = [
        traffic.scaled(OVERLOAD_FACTOR)
        for traffic in priority_overload_mix(
            SWEEP_REGIONS,
            high_rate_per_s=100.0,
            low_rate_per_s=300.0,
            config=config,
            high_priority=HIGH_PRIORITY,
            admission_window_ns=5e6,
            hold_range_ns=(3e6, 8e6),
        )
    ]
    workload = generate_workload(ENGINE_SEED, horizon_ns, classes, name="overload-x8")
    return workload, classes


def run_overload_config(workload, *, governor):
    """Replay the overload stream with (or without) the shedding governor."""
    platform = build_sweep_platform()
    partition = RegionPartition.grid(platform, SWEEP_REGIONS, SWEEP_REGIONS)
    manager = RuntimeResourceManager(
        platform, config=MapperConfig(analysis_iterations=3), partition=partition
    )
    engine = WorkloadEngine(
        manager,
        executor=SerialRegionExecutor(),
        park_rejections=True,
        governor=governor,
    )
    outcome = engine.run(workload)
    return manager, outcome


def overload_summary(label, manager, outcome):
    return {
        "config": label,
        "decided": outcome.decided,
        "admitted": len(outcome.admitted),
        "expired": len(outcome.expired),
        "shed": len(outcome.shed),
        "admission_rate": round(outcome.admission_rate, 4),
        "high_priority_rate": round(
            outcome.priority_admission_rate(HIGH_PRIORITY), 4
        ),
        "low_priority_rate": round(outcome.priority_admission_rate(0), 4),
        "mapper_invocations": manager.pipeline.mapper_invocations,
        "mapping_runtime_ms": round(outcome.mapping_runtime_s * 1e3, 3),
        "governor": outcome.telemetry.governor,
    }


def test_ext_overload_shedding_governor(benchmark):
    """Online load shedding must *pay* under overload.

    At 8x offered load, the governor-on engine must admit high-priority
    traffic at >= 1.15x the governor-off rate while spending strictly fewer
    mapper invocations — shedding happens before any mapping work.  Both
    runs replay the identical event stream, and all asserted quantities are
    virtual-time/decision metrics, so the verdict is deterministic.
    ``$OVERLOAD_HORIZON_NS`` shrinks the stream and
    ``$OVERLOAD_MIN_IMPROVEMENT`` relaxes the floor for the CI smoke step.
    """
    horizon_ns = float(os.environ.get("OVERLOAD_HORIZON_NS", ENGINE_HORIZON_NS))
    min_improvement = float(os.environ.get("OVERLOAD_MIN_IMPROVEMENT", 1.15))
    workload, classes = overload_workload(horizon_ns)
    results = {}

    def run_both():
        results["off"] = run_overload_config(workload, governor=None)
        results["on"] = run_overload_config(
            workload, governor=LoadSheddingGovernor(GOVERNOR_CONFIG)
        )
        return results

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    summaries = {
        label: overload_summary(label, manager, outcome)
        for label, (manager, outcome) in results.items()
    }
    benchmark.extra_info["overload"] = summaries
    benchmark.extra_info["offered_rate_per_s"] = round(offered_rate_per_s(classes), 1)

    off, on = summaries["off"], summaries["on"]
    assert off["decided"] > 0 and on["decided"] > 0
    # The stream must actually overload the platform (on the full horizon;
    # a shrunken smoke stream may end before saturation sets in)...
    assert off["admission_rate"] < 1.0
    if "OVERLOAD_HORIZON_NS" not in os.environ:
        assert off["admission_rate"] < GOVERNOR_CONFIG.rate_floor
    # ...the governor must have engaged and shed only sheddable work...
    assert on["shed"] > 0
    assert on["governor"]["transitions"] >= 1
    # ...saving mapper work: every shed arrival is a mapper run not spent.
    assert on["mapper_invocations"] < off["mapper_invocations"], (on, off)
    # ...and converting that saving into protected-tier admissions.
    improvement = (
        on["high_priority_rate"] / off["high_priority_rate"]
        if off["high_priority_rate"]
        else float("inf")
    )
    benchmark.extra_info["high_priority_improvement"] = round(improvement, 3)
    assert improvement >= min_improvement, (improvement, on, off)

    trajectory = {
        "offered_rate_per_s": round(offered_rate_per_s(classes), 1),
        "load_factor": OVERLOAD_FACTOR,
        "horizon_ns": horizon_ns,
        "high_priority_improvement": round(improvement, 3),
        "configs": summaries,
    }
    out_path = os.environ.get("OVERLOAD_GOVERNOR_JSON")
    if not out_path and "OVERLOAD_HORIZON_NS" not in os.environ:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        out_path = os.path.join(root, "BENCH_overload_governor.json")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(trajectory, handle, indent=2)
            handle.write("\n")


# --------------------------------------------------------------------------- #
# Rescue lane: stochastic placement portfolio under memory fragmentation
# --------------------------------------------------------------------------- #

# The rescue regime is deliberately a *packing* problem, not a matching one:
# multi-slot tiles with tight memories make the greedy first-fit front end
# strand memory (channel buffers live in consumer-tile memory, so placement
# decides whether they fit), and those rejections are exactly the ones a
# seeded random-placement portfolio can convert.  With one slot per tile —
# the default mesh — placement is pure type matching and greedy is already
# near-optimal, so this sweep builds its own mesh.
RESCUE_SPAN = 3                 # 6x6 mesh, four 3x3 regions
RESCUE_SLOTS = 4                # multi-slot tiles: packing, not matching
RESCUE_TILE_MEMORY = 16 * 1024  # tight per-tile memory
RESCUE_MEMORY_CHOICES = (2048, 4096, 8192, 12288)
RESCUE_HOLD = 12                # churn keeps this many applications resident
RESCUE_SEED = 900
RESCUE_SEARCHERS = 6
RESCUE_ATTEMPTS = 4


def build_rescue_workload(arrivals):
    """``arrivals`` heterogeneous applications, round-robined over the four
    regions' I/O tiles.  Sizes are drawn from one seeded RNG while building
    the schedule, so every configuration replays the identical arrival
    sequence (the RNG never touches the admission loop)."""
    rng = random.Random(7)
    cells = itertools.cycle([(0, 0), (1, 0), (0, 1), (1, 1)])
    schedule = []
    for index, cell in zip(range(1, arrivals + 1), cells):
        io_tile = f"io_r{cell[0]}_{cell[1]}"
        config = SyntheticConfig(
            stages=rng.choice((3, 4, 5, 6)),
            period_ns=60_000.0,
            tokens_range=(16, 64),
            tile_types=("GPP", "DSP"),
            memory_choices=RESCUE_MEMORY_CHOICES,
        )
        schedule.append(
            generate_application(
                RESCUE_SEED + index,
                config,
                name=f"rescue_app{index}",
                source_tile=io_tile,
                sink_tile=io_tile,
            )
        )
    return schedule


def memory_fill(manager):
    """Fraction of tile memory currently allocated — the binding resource in
    the rescue regime (slots stay loose while buffers exhaust memory)."""
    tiles = manager.platform.processing_tiles()
    capacity = sum(tile.resources.memory_bytes for tile in tiles)
    used = sum(manager.state.used_memory_bytes(tile.name) for tile in tiles)
    return used / capacity if capacity else 0.0


def rescue_band_of(fill):
    """Memory-fill bands for the rescue regime.

    Fragmentation caps the usable fraction well below 1.0 here: the greedy
    steady state under churn oscillates around 0.45-0.50 memory fill, and
    that *is* the saturated regime (nearly every rejection happens there).
    The generic thirds-based :func:`band_of` would file the whole steady
    state under "mid", so the high band starts at 0.40 instead.
    """
    if fill < 0.2:
        return "low"
    if fill < 0.4:
        return "mid"
    return "high"


def run_rescue_config(label, config, schedule):
    """Replay the rescue churn schedule under one mapper configuration."""
    platform = generate_region_mesh(
        SWEEP_REGIONS,
        RESCUE_SPAN,
        name="rescue_mesh",
        max_processes_per_tile=RESCUE_SLOTS,
        tile_memory_bytes=RESCUE_TILE_MEMORY,
    )
    partition = RegionPartition.grid(platform, SWEEP_REGIONS, SWEEP_REGIONS)
    manager = RuntimeResourceManager(platform, config=config, partition=partition)
    running = deque()
    samples = []
    for app in schedule:
        # Churn *before* each arrival so departures keep flowing even
        # through rejection streaks — the resident set is pinned at
        # RESCUE_HOLD and the platform stays in the high-fill band.
        while len(running) >= RESCUE_HOLD:
            manager.stop(running.popleft())
        fill = memory_fill(manager)
        decision = manager.admit(app.als, library=app.library)
        if decision.admitted:
            running.append(app.als.name)
        rescued = bool(
            decision.result is not None
            and any(
                line.startswith("rescue: adopted")
                for line in decision.result.diagnostics
            )
        )
        samples.append(
            {
                "config": label,
                "fill": round(fill, 4),
                "admitted": decision.admitted,
                "rescued": rescued,
                "latency_ms": decision.mapping_runtime_s * 1e3,
            }
        )
    return samples


def test_ext_rescue_lane_fill_sweep(benchmark):
    """The stochastic rescue lane must *pay* at high fill.

    The identical churny arrival schedule replays twice — rescue off (the
    plain greedy pipeline) and rescue on (seeded random-placement portfolio
    after the refinement loop gives up) — and the admission rate in the
    high-memory-fill band must improve by at least ``$RESCUE_MIN_GAIN``
    (absolute percentage points, default 0.10).  All asserted quantities
    are decisions, not wall clock, so the verdict is deterministic: the
    rescue searchers are seeded from request fingerprints and the schedule
    never consults a global RNG.  ``$RESCUE_ARRIVALS`` shrinks the stream
    for the CI smoke step (which also relaxes the floor — a short stream
    barely reaches the high band).
    """
    arrivals = int(os.environ.get("RESCUE_ARRIVALS", "200"))
    min_gain = float(os.environ.get("RESCUE_MIN_GAIN", "0.10"))
    schedule = build_rescue_workload(arrivals)
    base = MapperConfig(analysis_iterations=3)
    configs = [
        ("rescue_off", base),
        (
            "rescue_on",
            replace(
                base,
                rescue_searchers=RESCUE_SEARCHERS,
                rescue_attempts=RESCUE_ATTEMPTS,
            ),
        ),
    ]
    results = {}

    def run_all():
        for label, config in configs:
            results[label] = run_rescue_config(label, config, schedule)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    off, on = results["rescue_off"], results["rescue_on"]
    assert len(off) == len(on) == arrivals

    # Rescue never fires when disabled, and every adoption is an admission.
    assert not any(sample["rescued"] for sample in off)
    assert all(sample["admitted"] for sample in on if sample["rescued"])

    # Rescue is strictly additive at the decision level: the first index
    # where the two runs diverge must be a rejection the rescue lane
    # converted into an admission — never a previously-admitted application
    # deciding differently.  (After that index the resident sets differ, so
    # later decisions may legitimately diverge either way.)
    divergences = [
        index
        for index, (a, b) in enumerate(zip(off, on))
        if a["admitted"] != b["admitted"]
    ]
    if divergences:
        first = divergences[0]
        assert not off[first]["admitted"] and on[first]["admitted"], (first, off[first])
        assert on[first]["rescued"], on[first]

    summary = {}
    for label, samples in results.items():
        per_band = summarise(samples, band=rescue_band_of)
        for band, row in per_band.items():
            row["rescued"] = sum(
                1
                for sample in samples
                if rescue_band_of(sample["fill"]) == band and sample["rescued"]
            )
            row["admission_rate"] = round(row["admitted"] / row["admissions"], 4)
        summary[label] = per_band
    benchmark.extra_info["rescue_summary"] = summary

    rescued_total = sum(1 for sample in on if sample["rescued"])
    benchmark.extra_info["rescued_total"] = rescued_total
    assert rescued_total > 0, summary

    # The headline claim: a measurable admission-rate gain in the high-fill
    # band.  Decisions are deterministic, so the default floor is set from
    # the measured effect (~+0.2) with generous headroom, not CI noise.
    assert "high" in summary["rescue_off"] and "high" in summary["rescue_on"], summary
    off_high = summary["rescue_off"]["high"]
    on_high = summary["rescue_on"]["high"]
    gain = on_high["admission_rate"] - off_high["admission_rate"]
    benchmark.extra_info["high_fill_admission_gain"] = round(gain, 4)
    assert gain >= min_gain, (gain, summary)

    payload = {
        "arrivals": arrivals,
        "hold": RESCUE_HOLD,
        "regime": {
            "span": RESCUE_SPAN,
            "slots_per_tile": RESCUE_SLOTS,
            "tile_memory_bytes": RESCUE_TILE_MEMORY,
            "memory_choices": list(RESCUE_MEMORY_CHOICES),
            "searchers": RESCUE_SEARCHERS,
            "attempts": RESCUE_ATTEMPTS,
        },
        "min_gain": min_gain,
        "high_fill_admission_gain": round(gain, 4),
        "rescued_total": rescued_total,
        "summary": {
            label: {
                band: {key: round(value, 4) for key, value in row.items()}
                for band, row in bands.items()
            }
            for label, bands in summary.items()
        },
    }
    out_path = os.environ.get("RESCUE_LANE_JSON")
    if not out_path and "RESCUE_ARRIVALS" not in os.environ:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        out_path = os.path.join(root, "BENCH_rescue_lane.json")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")


LOAD_FACTORS = (0.5, 2.0, 8.0)


def test_ext_admission_rate_vs_offered_load(benchmark):
    """The paper-style curve: admission rate degrades as offered load rises."""
    curve = []

    def run_curve():
        curve.clear()
        for factor in LOAD_FACTORS:
            classes = engine_traffic_classes(load_factor=factor)
            workload = generate_workload(
                ENGINE_SEED, ENGINE_HORIZON_NS, classes, name=f"load-{factor}"
            )
            outcome = run_engine_config(
                workload, sharded=True, executor_kind="serial"
            )
            curve.append(
                {
                    "load_factor": factor,
                    "offered_rate_per_s": round(offered_rate_per_s(classes), 1),
                    "decided": outcome.decided,
                    "admitted": len(outcome.admitted),
                    "expired": len(outcome.expired),
                    "admission_rate": round(outcome.admission_rate, 4),
                    "parked_retries_skipped": outcome.parked_retries_skipped,
                }
            )
        return curve

    benchmark.pedantic(run_curve, rounds=1, iterations=1)
    benchmark.extra_info["admission_rate_curve"] = curve

    # Offered load really rises along the sweep...
    offered = [point["offered_rate_per_s"] for point in curve]
    assert offered == sorted(offered) and offered[0] < offered[-1]
    assert all(point["decided"] > 0 for point in curve)
    # ...and the admission rate can only degrade with it.  The lightest load
    # must be comfortably admissible, the heaviest must actually overload.
    rates = [point["admission_rate"] for point in curve]
    assert rates[0] >= 0.95, curve
    assert rates[-1] < rates[0], curve
    for lighter, heavier in zip(rates, rates[1:]):
        assert heavier <= lighter + 0.05, curve

    out_path = os.environ.get("ADMISSION_LOAD_CURVE_JSON")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump({"curve": curve}, handle, indent=2)
