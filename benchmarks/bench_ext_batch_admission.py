"""Extension experiment `ext-batch` — batch admission at run time.

The paper's run-time premise only scales to many co-running applications if
an admission decision stays cheap while the platform fills up.  This
benchmark drives :meth:`RuntimeResourceManager.start_many` over a workload of
dozens of synthetic applications on a large mesh and asserts the two
properties the incremental resource-accounting core guarantees:

* the batch admits a production-sized workload (>= 50 applications) with
  per-application accept/reject decisions in one call, and
* the per-admission mapping time does not grow with the allocation-list
  lengths of the already-running applications — resource queries hit the
  O(1) cached aggregates, so the 10 admissions onto a platform already
  hosting ~50 applications cost about the same as the first 10 onto an empty
  platform.

The *fill sweep* (`test_ext_admission_fill_sweep`) extends this to the
fragmentation/heterogeneity regime the staged pipeline targets: a churny
workload (starts interleaved with stops and re-starts) over a region-sharded
heterogeneous mesh, measured at rising fill levels, for four pipeline
configurations — the PR 1 baseline (no sharding, no caching), caching only,
sharding only, and sharding + caching.  Per-admission latency and admission
rate per fill band are attached as a JSON-serialisable trajectory in
``extra_info`` (and optionally written to ``$ADMISSION_SWEEP_JSON``).
"""

import json
import os

import pytest

from repro.platform.builder import PlatformBuilder
from repro.platform.regions import RegionPartition
from repro.runtime.manager import RuntimeResourceManager
from repro.spatialmapper.config import MapperConfig
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_application,
    generate_platform,
    generate_scenario,
)

APPLICATIONS = 60
MIN_ADMITTED = 50


@pytest.fixture(scope="module")
def workload():
    """Sixty small streaming applications and a 12x12 mesh to host them."""
    config = SyntheticConfig(stages=2, period_ns=100_000.0)
    applications = generate_scenario(seed=9, application_count=APPLICATIONS, config=config)
    platform = generate_platform(seed=21, width=12, height=12)
    return applications, platform


def test_ext_batch_start_many_admits_workload(benchmark, workload):
    applications, platform = workload
    outcomes = {}

    def run_batch():
        manager = RuntimeResourceManager(
            platform, config=MapperConfig(analysis_iterations=3), require_feasible=True
        )
        outcome = manager.start_many([(app.als, app.library) for app in applications])
        outcomes["last"] = (manager, outcome)
        return outcome

    benchmark.pedantic(run_batch, rounds=1, iterations=1)
    manager, outcome = outcomes["last"]

    admitted = outcome.admitted
    assert len(outcome.decisions) == APPLICATIONS
    assert len(admitted) >= MIN_ADMITTED
    assert all(manager.is_running(d.application) for d in admitted)

    # Per-admission mapping time must not trend upward as the platform fills:
    # with O(1) aggregate queries the cost of an admission depends on the
    # application and platform size, not on how many applications (and how
    # many allocation-list entries) are already resident.
    times = [d.mapping_runtime_s for d in outcome.decisions]
    first = sum(times[:10]) / 10
    last = sum(times[-10:]) / 10
    assert last <= 3.0 * first, (
        f"per-admission time grew from {first * 1e3:.2f} ms to {last * 1e3:.2f} ms "
        "while the platform filled up"
    )

    benchmark.extra_info["applications"] = APPLICATIONS
    benchmark.extra_info["admitted"] = len(admitted)
    benchmark.extra_info["admission_rate"] = round(outcome.admission_rate, 3)
    benchmark.extra_info["first10_admission_ms"] = round(first * 1e3, 3)
    benchmark.extra_info["last10_admission_ms"] = round(last * 1e3, 3)
    benchmark.extra_info["growth_ratio"] = round(last / first, 3) if first else None


def test_ext_batch_all_or_nothing_rolls_back(benchmark, workload):
    """An all-or-nothing batch that cannot fully fit must leave the platform
    bit-identical to an empty one — the transactional commit path."""
    applications, _ = workload
    # A deliberately tiny platform so the batch cannot fit entirely.
    small = generate_platform(seed=33, width=3, height=3)

    def run_batch():
        manager = RuntimeResourceManager(
            small, config=MapperConfig(analysis_iterations=3), require_feasible=True
        )
        outcome = manager.start_many(
            [(app.als, app.library) for app in applications[:12]], all_or_nothing=True
        )
        return manager, outcome

    manager, outcome = benchmark.pedantic(run_batch, rounds=1, iterations=1)
    assert len(outcome.rejected) >= 1
    assert manager.state.occupied_tiles() == ()
    assert manager.state.link_loads() == {}
    assert not manager.running_applications
    benchmark.extra_info["attempted"] = len(outcome.decisions)
    benchmark.extra_info["first_rejection"] = outcome.rejected[0].application


# --------------------------------------------------------------------------- #
# Fill-level sweep: fragmentation/heterogeneity, sharding and caching
# --------------------------------------------------------------------------- #

SWEEP_REGIONS = 2  # 2x2 grid
SWEEP_SPAN = 4     # routers per region edge (8x8 mesh)
APPS_PER_REGION = 9


def build_sweep_platform():
    """An 8x8 heterogeneous mesh with one I/O tile per 4x4 region.

    Every region hosts its own pinned I/O tile, so applications can live
    entirely inside one region — the topology region sharding needs to pay
    off.  Processing tiles alternate between GPP and DSP deterministically
    (heterogeneity without randomness).
    """
    width = height = SWEEP_REGIONS * SWEEP_SPAN
    builder = (
        PlatformBuilder("sweep_mesh")
        .mesh(width, height, link_capacity_bits_per_s=4e9, router_frequency_mhz=200.0)
        .tile_type("IO", frequency_mhz=200.0, is_processing=False)
        .tile_type("GPP", frequency_mhz=200.0)
        .tile_type("DSP", frequency_mhz=100.0)
    )
    counter = 0
    for y in range(height):
        for x in range(width):
            if x % SWEEP_SPAN == 0 and y % SWEEP_SPAN == 0:
                builder.tile(f"io_r{x // SWEEP_SPAN}_{y // SWEEP_SPAN}", "IO", (x, y))
                continue
            tile_type = "DSP" if (x + y) % 3 == 0 else "GPP"
            counter += 1
            builder.tile(
                f"{tile_type.lower()}{counter}", tile_type, (x, y), memory_bytes=128 * 1024
            )
    return builder.build()


def build_sweep_workload():
    """Per-region pools of two-stage applications pinned to their region's I/O."""
    config = SyntheticConfig(stages=2, period_ns=100_000.0, tile_types=("GPP", "DSP"))
    pools = {}
    for cx in range(SWEEP_REGIONS):
        for cy in range(SWEEP_REGIONS):
            region = f"r{cx}_{cy}"
            io_tile = f"io_{region}"
            pools[region] = [
                generate_application(
                    1000 * cx + 100 * cy + index,
                    config,
                    name=f"{region}_app{index}",
                    source_tile=io_tile,
                    sink_tile=io_tile,
                )
                for index in range(APPS_PER_REGION)
            ]
    return pools


def churn_schedule(pools):
    """A deterministic churny schedule: (op, region, app) triples.

    Three admission waves per region interleaved round-robin; between waves,
    the most recent admissions are stopped in exact reverse order and then
    re-admitted in the original order.  The unwinding returns the platform
    (and each region) to fingerprints that were already seen when those
    applications were first mapped, so their re-admissions are exactly the
    recurring questions the mapper cache answers — while the stop/start
    holes exercise fragmentation on the way.
    """
    regions = sorted(pools)
    ops = []

    def admit_wave(indices):
        for index in indices:
            for region in regions:
                ops.append(("start", region, pools[region][index]))

    def churn(indices):
        for index in reversed(indices):
            for region in reversed(regions):
                ops.append(("stop", region, pools[region][index]))
        for index in indices:
            for region in regions:
                ops.append(("start", region, pools[region][index]))

    admit_wave(range(0, 3))
    churn(range(1, 3))
    admit_wave(range(3, 6))
    churn(range(4, 6))
    admit_wave(range(6, APPS_PER_REGION))
    churn(range(6, APPS_PER_REGION))
    return ops


def slot_fill(manager):
    """Fraction of processing slots currently occupied."""
    tiles = manager.platform.processing_tiles()
    capacity = sum(tile.resources.max_processes for tile in tiles)
    used = sum(manager.state.used_process_slots(tile.name) for tile in tiles)
    return used / capacity if capacity else 0.0


def run_sweep_config(label, partition_regions, cache_size):
    """Run the churn schedule under one pipeline configuration."""
    platform = build_sweep_platform()
    partition = (
        RegionPartition.grid(platform, partition_regions, partition_regions)
        if partition_regions
        else None
    )
    manager = RuntimeResourceManager(
        platform,
        config=MapperConfig(analysis_iterations=3),
        partition=partition,
        mapper_cache_size=cache_size,
    )
    pools = build_sweep_workload()
    samples = []
    for op, region, app in churn_schedule(pools):
        if op == "stop":
            if manager.is_running(app.als.name):
                manager.stop(app.als.name)
            continue
        fill = slot_fill(manager)
        decision = manager.admit(app.als, library=app.library)
        samples.append(
            {
                "config": label,
                "fill": round(fill, 4),
                "region": region,
                "admitted": decision.admitted,
                "latency_ms": decision.mapping_runtime_s * 1e3,
            }
        )
    cache = manager.pipeline.cache
    stats = {
        "hits": cache.stats.hits if cache else 0,
        "misses": cache.stats.misses if cache else 0,
    }
    return samples, stats


def band_of(fill):
    """Coarse fill band: low (< 1/3), mid, or high (>= 2/3)."""
    if fill < 1 / 3:
        return "low"
    if fill < 2 / 3:
        return "mid"
    return "high"


def summarise(samples):
    """Per-fill-band admission rate and latency (mean + noise-robust median)."""
    bands = {}
    for sample in samples:
        bands.setdefault(band_of(sample["fill"]), []).append(sample)
    summary = {}
    for band, rows in bands.items():
        latencies = sorted(row["latency_ms"] for row in rows)
        middle = len(latencies) // 2
        median = (
            latencies[middle]
            if len(latencies) % 2
            else (latencies[middle - 1] + latencies[middle]) / 2
        )
        summary[band] = {
            "admissions": len(rows),
            "admitted": sum(1 for row in rows if row["admitted"]),
            "mean_latency_ms": sum(latencies) / len(latencies),
            "median_latency_ms": median,
        }
    return summary


SWEEP_CONFIGS = [
    ("baseline", 0, 0),           # PR 1: no sharding, no caching
    ("cached", 0, 128),           # fingerprint-keyed mapper cache only
    ("sharded", SWEEP_REGIONS, 0),        # region-scoped pipeline only
    ("sharded+cached", SWEEP_REGIONS, 128),
]


def test_ext_admission_fill_sweep(benchmark):
    results = {}

    def run_all():
        for label, regions, cache_size in SWEEP_CONFIGS:
            samples, stats = run_sweep_config(label, regions, cache_size)
            results[label] = {
                "samples": samples,
                "cache": stats,
                "summary": summarise(samples),
            }
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    trajectory = [
        {
            "config": label,
            "band": band,
            **{key: round(value, 4) for key, value in row.items()},
        }
        for label, data in results.items()
        for band, row in sorted(data["summary"].items())
    ]
    benchmark.extra_info["trajectory"] = trajectory
    for label, data in results.items():
        benchmark.extra_info[f"{label}_cache"] = data["cache"]

    out_path = os.environ.get("ADMISSION_SWEEP_JSON")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(
                {label: data["summary"] for label, data in results.items()}
                | {"samples": [s for d in results.values() for s in d["samples"]]},
                handle,
                indent=2,
            )

    # Every configuration processed the same schedule.
    counts = {label: len(data["samples"]) for label, data in results.items()}
    assert len(set(counts.values())) == 1, counts

    baseline = results["baseline"]["summary"]
    pipeline = results["sharded+cached"]["summary"]
    assert "high" in baseline and "high" in pipeline, (baseline, pipeline)

    # The workload must actually stress the platform: the high band should
    # still admit applications under every configuration.
    assert pipeline["high"]["admitted"] >= 1
    assert pipeline["high"]["admitted"] >= baseline["high"]["admitted"] * 0.75

    # Acceptance: per-admission latency stays flat (or improves) as the fill
    # level rises for the sharded+cached pipeline, and does not regress
    # against the PR 1 baseline at high fill.  Medians with generous factors:
    # single stray scheduling hiccups on a loaded CI machine must not flip
    # the verdict (the real effect — cache hits plus region-local search —
    # is a multiple, not a few percent).
    assert (
        pipeline["high"]["median_latency_ms"]
        <= 2.5 * pipeline["low"]["median_latency_ms"]
    ), pipeline
    assert (
        pipeline["high"]["median_latency_ms"]
        <= 1.5 * baseline["high"]["median_latency_ms"]
    ), (pipeline["high"], baseline["high"])

    # The cache must actually serve hits under churn.
    assert results["sharded+cached"]["cache"]["hits"] > 0
    assert results["cached"]["cache"]["hits"] > 0
