"""Extension experiment `ext-batch` — batch admission at run time.

The paper's run-time premise only scales to many co-running applications if
an admission decision stays cheap while the platform fills up.  This
benchmark drives :meth:`RuntimeResourceManager.start_many` over a workload of
dozens of synthetic applications on a large mesh and asserts the two
properties the incremental resource-accounting core guarantees:

* the batch admits a production-sized workload (>= 50 applications) with
  per-application accept/reject decisions in one call, and
* the per-admission mapping time does not grow with the allocation-list
  lengths of the already-running applications — resource queries hit the
  O(1) cached aggregates, so the 10 admissions onto a platform already
  hosting ~50 applications cost about the same as the first 10 onto an empty
  platform.
"""

import pytest

from repro.runtime.manager import RuntimeResourceManager
from repro.spatialmapper.config import MapperConfig
from repro.workloads.synthetic import SyntheticConfig, generate_platform, generate_scenario

APPLICATIONS = 60
MIN_ADMITTED = 50


@pytest.fixture(scope="module")
def workload():
    """Sixty small streaming applications and a 12x12 mesh to host them."""
    config = SyntheticConfig(stages=2, period_ns=100_000.0)
    applications = generate_scenario(seed=9, application_count=APPLICATIONS, config=config)
    platform = generate_platform(seed=21, width=12, height=12)
    return applications, platform


def test_ext_batch_start_many_admits_workload(benchmark, workload):
    applications, platform = workload
    outcomes = {}

    def run_batch():
        manager = RuntimeResourceManager(
            platform, config=MapperConfig(analysis_iterations=3), require_feasible=True
        )
        outcome = manager.start_many([(app.als, app.library) for app in applications])
        outcomes["last"] = (manager, outcome)
        return outcome

    benchmark.pedantic(run_batch, rounds=1, iterations=1)
    manager, outcome = outcomes["last"]

    admitted = outcome.admitted
    assert len(outcome.decisions) == APPLICATIONS
    assert len(admitted) >= MIN_ADMITTED
    assert all(manager.is_running(d.application) for d in admitted)

    # Per-admission mapping time must not trend upward as the platform fills:
    # with O(1) aggregate queries the cost of an admission depends on the
    # application and platform size, not on how many applications (and how
    # many allocation-list entries) are already resident.
    times = [d.mapping_runtime_s for d in outcome.decisions]
    first = sum(times[:10]) / 10
    last = sum(times[-10:]) / 10
    assert last <= 3.0 * first, (
        f"per-admission time grew from {first * 1e3:.2f} ms to {last * 1e3:.2f} ms "
        "while the platform filled up"
    )

    benchmark.extra_info["applications"] = APPLICATIONS
    benchmark.extra_info["admitted"] = len(admitted)
    benchmark.extra_info["admission_rate"] = round(outcome.admission_rate, 3)
    benchmark.extra_info["first10_admission_ms"] = round(first * 1e3, 3)
    benchmark.extra_info["last10_admission_ms"] = round(last * 1e3, 3)
    benchmark.extra_info["growth_ratio"] = round(last / first, 3) if first else None


def test_ext_batch_all_or_nothing_rolls_back(benchmark, workload):
    """An all-or-nothing batch that cannot fully fit must leave the platform
    bit-identical to an empty one — the transactional commit path."""
    applications, _ = workload
    # A deliberately tiny platform so the batch cannot fit entirely.
    small = generate_platform(seed=33, width=3, height=3)

    def run_batch():
        manager = RuntimeResourceManager(
            small, config=MapperConfig(analysis_iterations=3), require_feasible=True
        )
        outcome = manager.start_many(
            [(app.als, app.library) for app in applications[:12]], all_or_nothing=True
        )
        return manager, outcome

    manager, outcome = benchmark.pedantic(run_batch, rounds=1, iterations=1)
    assert len(outcome.rejected) >= 1
    assert manager.state.occupied_tiles() == ()
    assert manager.state.link_loads() == {}
    assert not manager.running_applications
    benchmark.extra_info["attempted"] = len(outcome.decisions)
    benchmark.extra_info["first_rejection"] = outcome.rejected[0].application
