"""Extension experiment `ext-ablation` — which parts of the heuristic matter?

Three design choices of the paper's algorithm are ablated on the HiperLAN/2
case and on synthetic workloads:

* **step-2 refinement** — the local search after the greedy first fit
  (compare the full mapper against the step-1-only first-fit baseline);
* **first-improvement versus best-improvement** in step 2 (the paper
  evaluates one reassignment per iteration; best-improvement evaluates all);
* **desirability ordering** in step 1 (energy-only, as in the worked example,
  versus energy plus a communication estimate).
"""

from repro.baselines.first_fit import FirstFitMapper
from repro.mapping.result import MappingStatus
from repro.spatialmapper.config import DesirabilityMetric, MapperConfig, Step2Strategy
from repro.spatialmapper.mapper import SpatialMapper
from repro.spatialmapper.step1_implementation import select_implementations
from repro.spatialmapper.step2_tile_assignment import refine_tile_assignment
from repro.workloads.synthetic import SyntheticConfig, generate_application, generate_platform


def test_ablation_step2_refinement_reduces_communication(benchmark, case_study, fast_config):
    """Dropping step 2 keeps the mapping feasible but costs communication:
    on the paper's example the Manhattan cost goes from 7 back up to 11."""
    als, platform, library = case_study
    full_mapper = SpatialMapper(platform, library, fast_config)

    full = benchmark(full_mapper.map, als)
    step1_only = FirstFitMapper(platform, library, fast_config).map(als)

    assert full.status is MappingStatus.FEASIBLE
    assert step1_only.status is MappingStatus.FEASIBLE
    assert full.manhattan_cost == 7.0
    assert step1_only.manhattan_cost == 11.0
    assert full.energy_nj_per_iteration <= step1_only.energy_nj_per_iteration
    benchmark.extra_info["manhattan_with_step2"] = full.manhattan_cost
    benchmark.extra_info["manhattan_without_step2"] = step1_only.manhattan_cost


def test_ablation_first_vs_best_improvement(benchmark, case_study, fast_config):
    """Both step-2 strategies reach the same final cost on the paper's case;
    best-improvement needs fewer evaluated reassignments."""
    als, platform, library = case_study

    def run_both():
        step1 = select_implementations(als, platform, library, config=fast_config)
        first = refine_tile_assignment(
            step1.mapping, als, platform,
            config=MapperConfig(step2_strategy=Step2Strategy.FIRST_IMPROVEMENT),
        )
        best = refine_tile_assignment(
            step1.mapping, als, platform,
            config=MapperConfig(step2_strategy=Step2Strategy.BEST_IMPROVEMENT),
        )
        return first, best

    first, best = benchmark(run_both)
    assert first.final_cost == best.final_cost == 7.0
    assert len(best.trace.iterations) <= len(first.trace.iterations)
    benchmark.extra_info["first_improvement_iterations"] = len(first.trace.iterations)
    benchmark.extra_info["best_improvement_iterations"] = len(best.trace.iterations)


def test_ablation_desirability_metric_on_synthetic_workloads(benchmark, fast_config):
    """Adding the communication estimate to the step-1 desirability never
    hurts feasibility on the synthetic suite and tends to reduce energy."""
    seeds = (11, 12, 13)

    def run_sweep():
        outcomes = []
        for seed in seeds:
            application = generate_application(
                seed=seed, config=SyntheticConfig(stages=5, period_ns=40_000.0)
            )
            platform = generate_platform(seed=seed + 500, width=4, height=4)
            energy_only = SpatialMapper(
                platform,
                application.library,
                MapperConfig(desirability_metric=DesirabilityMetric.ENERGY,
                             analysis_iterations=3),
            ).map(application.als)
            with_comm = SpatialMapper(
                platform,
                application.library,
                MapperConfig(
                    desirability_metric=DesirabilityMetric.ENERGY_AND_COMMUNICATION,
                    analysis_iterations=3,
                ),
            ).map(application.als)
            outcomes.append((energy_only, with_comm))
        return outcomes

    outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    for energy_only, with_comm in outcomes:
        assert energy_only.status is MappingStatus.FEASIBLE
        assert with_comm.status is MappingStatus.FEASIBLE
    mean_energy_only = sum(e.energy_nj_per_iteration for e, _ in outcomes) / len(outcomes)
    mean_with_comm = sum(w.energy_nj_per_iteration for _, w in outcomes) / len(outcomes)
    # The communication-aware ordering must not be worse on average than the
    # paper's energy-only ordering by more than a couple of percent.
    assert mean_with_comm <= mean_energy_only * 1.02
    benchmark.extra_info["mean_energy_only_nj"] = round(mean_energy_only, 1)
    benchmark.extra_info["mean_energy_and_comm_nj"] = round(mean_with_comm, 1)
