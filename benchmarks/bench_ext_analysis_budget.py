"""Extension experiment `ext-analysis-budget` — cached, early-exit step 4.

Step 4 re-answers the same dataflow questions over and over: the runtime
remaps an application whenever its region's state changes, and whenever the
resulting mapped graph is structurally unchanged every simulation of the
feasibility check is a repeat of one already run.  The analysis engine
(:mod:`repro.csdf.analysis.budget`) memoises those verdicts behind the
graph's structural fingerprint and lets each simulation stop early (backlog
abort, state-cycle exit).  This benchmark pins the tentpole claim on the
HiperLAN/2 case study with buffer minimisation on:

* over ``ANALYSIS_BUDGET_ROUNDS`` recurrent step-4 rounds (one cold, the
  rest re-asking the question the runtime re-asks), the budgeted engine
  simulates >= ``ANALYSIS_BUDGET_MIN_REDUCTION`` (default 2x) fewer events
  per round than the uncached full-simulation baseline;
* the buffer-capacity vector is bit-identical to the baseline's — the
  speedup never buys a different answer;
* a generated two-region workload drained with ``minimize_buffers`` on
  settles identically under the baseline and budgeted configurations and
  across the serial, threaded and process executors.

The trajectory is written to ``BENCH_analysis_budget.json`` at the
repository root (override with ``$ANALYSIS_BUDGET_JSON``); the env knobs
let the CI smoke step run a shrunken, assertion-relaxed version without
overwriting the tracked numbers.
"""

import json
import os

import pytest

from repro.platform.state import PlatformState
from repro.runtime.manager import RuntimeResourceManager
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.mapper import SpatialMapper
from tests.harness import (
    build_two_region_platform,
    make_engine,
    two_region_partition,
    two_region_workload,
)

ROUNDS = int(os.environ.get("ANALYSIS_BUDGET_ROUNDS", 4))
MIN_REDUCTION = float(os.environ.get("ANALYSIS_BUDGET_MIN_REDUCTION", 2.0))
SEED = 7

BASELINE_KNOBS = dict(analysis_early_exit=False, analysis_cache_size=0)


def step4_rounds(case_study, rounds, **knobs):
    """Map the case-study receiver ``rounds`` times on one mapper.

    Every round after the first re-asks step 4 the question the runtime
    re-asks after unrelated state churn: the mapped graph is structurally
    unchanged, so the budgeted engine answers from its verdict cache while
    the baseline re-simulates everything.  Returns the final mapping result
    plus the engine's counters.
    """
    als, platform, library = case_study
    config = MapperConfig(analysis_iterations=6, minimize_buffers=True, **knobs)
    mapper = SpatialMapper(platform, library, config)
    result = None
    for _ in range(rounds):
        result = mapper.map(als, PlatformState(platform))
    return result, mapper.analysis.snapshot()


def run_workload(executor, **knobs):
    """Drain the harness workload with buffer minimisation on."""
    platform = build_two_region_platform()
    manager = RuntimeResourceManager(
        platform,
        config=MapperConfig(analysis_iterations=3, minimize_buffers=True, **knobs),
        partition=two_region_partition(platform),
    )
    engine = make_engine(manager, executor=executor, park_rejections=True)
    try:
        return engine.run(two_region_workload(SEED))
    finally:
        if executor == "process":
            engine.executor.close()


def test_ext_analysis_budget(benchmark, case_study):
    results = {}

    def run_all():
        for label, knobs in (("baseline", BASELINE_KNOBS), ("budgeted", {})):
            results[label] = step4_rounds(case_study, ROUNDS, **knobs)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    (base_result, base_stats) = results["baseline"]
    (budget_result, budget_stats) = results["budgeted"]

    # Decision identity first: the capacity vector must be bit-identical.
    assert base_result.status is budget_result.status
    assert base_result.feasibility.buffer_capacities == budget_result.feasibility.buffer_capacities
    assert budget_stats["budget_exhausted"] == 0  # default budgets are unlimited

    per_round_base = base_stats["simulated_events"] / ROUNDS
    per_round_budget = budget_stats["simulated_events"] / ROUNDS
    reduction = per_round_base / max(per_round_budget, 1e-9)
    comparison = {
        label: {
            "rounds": ROUNDS,
            "simulations_run": stats["simulations_run"],
            "simulated_events": stats["simulated_events"],
            "cache_hits": stats["cache_hits"],
            "events_per_step4_round": round(stats["simulated_events"] / ROUNDS, 1),
        }
        for label, (_, stats) in results.items()
    }
    benchmark.extra_info["comparison"] = comparison
    benchmark.extra_info["event_reduction"] = round(reduction, 3)

    # Recurrent rounds must actually hit the cache, not re-simulate.
    assert budget_stats["cache_hits"] > 0
    assert base_stats["cache_hits"] == 0

    # The tentpole target: >= 2x fewer simulated events per step-4 round on
    # the case study (relaxed via $ANALYSIS_BUDGET_MIN_REDUCTION for the CI
    # smoke run).
    assert reduction >= MIN_REDUCTION, comparison

    # Differential: with minimize_buffers on, the analysis changes must not
    # shift a single admission — baseline vs budgeted, and budgeted across
    # all three executors.
    serial_base = run_workload("serial", **BASELINE_KNOBS)
    executor_logs = {}
    for executor in ("serial", "threaded", "process"):
        outcome = run_workload(executor)
        executor_logs[executor] = outcome.decision_log()
        assert outcome.decision_log() == serial_base.decision_log(), executor
    assert executor_logs["threaded"] == executor_logs["serial"]
    assert executor_logs["process"] == executor_logs["serial"]
    benchmark.extra_info["workload_decisions"] = len(serial_base.decision_log())

    payload = {
        "rounds": ROUNDS,
        "event_reduction_per_step4_round": round(reduction, 3),
        "capacity_vector_identical": True,
        "workload_decisions": len(serial_base.decision_log()),
        "comparison": comparison,
    }
    # Tracked at the repository root; shrunken smoke runs (env overrides, no
    # explicit redirect) must not overwrite the representative numbers.
    out_path = os.environ.get("ANALYSIS_BUDGET_JSON")
    shrunken = bool(
        os.environ.get("ANALYSIS_BUDGET_ROUNDS")
        or os.environ.get("ANALYSIS_BUDGET_MIN_REDUCTION")
    )
    if not out_path and not shrunken:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        out_path = os.path.join(root, "BENCH_analysis_budget.json")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    raise SystemExit(pytest.main([__file__, "-q"]))
