"""Figure 2 — the hypothetical MPSoC.

Regenerates the 3x3-mesh platform (two ARMs, two Montiums, the A/D source,
the Sink and three unused tiles) and benchmarks platform construction, which
the run-time manager performs once at boot.
"""

from repro.reporting import experiments


def test_fig2_mpsoc_layout(benchmark):
    report = benchmark(experiments.experiment_figure2)

    counts = report.data["tile_type_counts"]
    assert report.data["routers"] == 9
    assert counts == {"ARM": 2, "MONTIUM": 2, "IO": 2, "OTHER": 3}
    positions = report.data["positions"]
    assert len(positions) == 9
    assert len(set(positions.values())) == 9  # one tile per router
    benchmark.extra_info["tile_type_counts"] = counts
    benchmark.extra_info["positions"] = {k: list(v) for k, v in positions.items()}
