"""Figure 3 — the final mapped CSDF graph.

Runs the complete four-step mapper on the HiperLAN/2 case and regenerates the
mapped CSDF graph: the four process actors on their final tiles, one 4-cycle
router actor per hop of every routed channel, and the buffer capacities B_i
computed by the step-4 dataflow analysis.  The benchmark times the full
``SpatialMapper.map`` call (steps 1-4 including the analysis).
"""

from repro.reporting import experiments

#: Final assignment of Table 2 / Figure 3.
PAPER_FINAL_ASSIGNMENT = {
    "prefix_removal": "arm2",
    "freq_offset_correction": "arm1",
    "inverse_ofdm": "montium2",
    "remainder": "montium1",
}


def test_fig3_mapped_csdf_graph(benchmark):
    report = benchmark(experiments.experiment_figure3)

    assert report.data["feasible"]
    assignment = {
        process: tile
        for process, tile in report.data["assignment"].items()
        if process in PAPER_FINAL_ASSIGNMENT
    }
    assert assignment == PAPER_FINAL_ASSIGNMENT

    # One router actor per hop; the total hop count equals the final
    # Manhattan cost of Table 2 (7) on the uncongested NoC.
    hops = report.data["per_channel_hops"]
    assert sum(hops.values()) == 7
    assert report.data["router_actor_count"] == 7

    # Step 4 produced a buffer capacity for every data channel and the mapped
    # graph sustains the 4 us period.
    buffers = report.data["buffer_capacities"]
    assert set(buffers) == {
        "c_adc_pfx", "c_pfx_frq", "c_frq_iofdm", "c_iofdm_rem", "c_rem_sink"
    }
    assert all(capacity >= 1 for capacity in buffers.values())
    assert report.data["achieved_period_ns"] <= report.data["required_period_ns"]

    benchmark.extra_info["per_channel_hops"] = hops
    benchmark.extra_info["buffer_capacities"] = buffers
    benchmark.extra_info["achieved_period_ns"] = report.data["achieved_period_ns"]
