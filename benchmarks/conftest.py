"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or one of the
extension experiments described in DESIGN.md).  The raw rows/series are
attached to the pytest-benchmark ``extra_info`` so they appear in the JSON
output, and the qualitative claims of the paper (who wins, what the cost
trajectory looks like) are asserted so a regression in the reproduction fails
the benchmark run loudly rather than silently producing different numbers.
"""

from __future__ import annotations

import pytest

from repro.spatialmapper.config import MapperConfig
from repro.workloads import hiperlan2


@pytest.fixture(scope="session")
def case_study():
    """The HiperLAN/2 case study: (ALS, platform, implementation library)."""
    return hiperlan2.build_case_study()


@pytest.fixture(scope="session")
def fast_config():
    """Mapper configuration with a reduced analysis horizon for benchmarking."""
    return MapperConfig(analysis_iterations=4)
