"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or one of the
extension experiments described in DESIGN.md).  The raw rows/series are
attached to the pytest-benchmark ``extra_info`` so they appear in the JSON
output, and the qualitative claims of the paper (who wins, what the cost
trajectory looks like) are asserted so a regression in the reproduction fails
the benchmark run loudly rather than silently producing different numbers.

The fixtures themselves live in the shared scenario harness
(``tests/harness.py``) so the test and benchmark suites build their
platforms, workloads and engines the same way.
"""

from __future__ import annotations

from tests.harness import case_study, fast_config  # noqa: F401  (shared fixtures)
