"""Figure 1 — the HiperLAN/2 receiver KPN.

Regenerates the application-level specification of the receiver (processes
and per-channel token counts) and benchmarks how long building and validating
the ALS takes (this happens on every application start request at run time).
"""

from repro.reporting import experiments
from repro.workloads import hiperlan2

#: Token counts on the data channels as printed in Figure 1 of the paper.
PAPER_CHANNEL_TOKENS = {
    "c_adc_pfx": 80,
    "c_pfx_frq": 64,
    "c_frq_iofdm": 64,
    "c_iofdm_rem": 52,
}


def test_fig1_receiver_kpn(benchmark):
    report = benchmark(experiments.experiment_figure1)

    tokens = report.data["channel_tokens"]
    for channel, expected in PAPER_CHANNEL_TOKENS.items():
        assert tokens[channel] == expected
    # The demapper output b depends on the mode: 3 tokens (12 bytes) for BPSK
    # up to 96 tokens (384 bytes) for 64-QAM.
    assert hiperlan2.output_tokens_for_mode("BPSK12") == 3
    assert hiperlan2.output_tokens_for_mode("QAM64_34") == 96
    assert set(report.data["processes"]) == {
        "adc", "prefix_removal", "freq_offset_correction", "inverse_ofdm",
        "remainder", "sink", "ctrl",
    }
    benchmark.extra_info["channel_tokens"] = tokens
    benchmark.extra_info["output_tokens_per_mode"] = {
        mode: hiperlan2.output_tokens_for_mode(mode) for mode in hiperlan2.HIPERLAN2_MODES
    }
